//! Measurement and observable utilities on state vectors.
//!
//! The simulators in this workspace evolve the pure unitary part of a circuit
//! (as the paper's do); these helpers extract classical information from the
//! final state — marginal probabilities, shot sampling, and Pauli-Z
//! expectation values — which the examples and tests use to validate circuit
//! semantics end to end.

use crate::state::StateVector;
use hisvsim_circuit::Qubit;
use rand::Rng;

/// Probability that measuring `qubit` yields 1.
pub fn probability_of_one(state: &StateVector, qubit: Qubit) -> f64 {
    assert!(qubit < state.num_qubits());
    let mask = 1usize << qubit;
    state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Expectation value of Pauli-Z on `qubit`: `P(0) - P(1)`.
pub fn expectation_z(state: &StateVector, qubit: Qubit) -> f64 {
    1.0 - 2.0 * probability_of_one(state, qubit)
}

/// Full probability distribution over computational basis states.
///
/// Only sensible for small registers (the vector has `2^n` entries).
pub fn probabilities(state: &StateVector) -> Vec<f64> {
    state.amplitudes().iter().map(|a| a.norm_sqr()).collect()
}

/// The most likely basis state and its probability.
pub fn most_probable(state: &StateVector) -> (usize, f64) {
    let mut best = (0usize, f64::MIN);
    for (i, a) in state.amplitudes().iter().enumerate() {
        let p = a.norm_sqr();
        if p > best.1 {
            best = (i, p);
        }
    }
    best
}

/// Sample `shots` measurement outcomes (full-register, computational basis).
pub fn sample_counts<R: Rng>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> std::collections::BTreeMap<usize, usize> {
    // Cumulative distribution sampling; adequate for the register sizes the
    // examples measure (they sample marginals of ≤ 24-qubit states rarely).
    let probs = probabilities(state);
    let mut cumulative = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in &probs {
        acc += p;
        cumulative.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..shots {
        let r: f64 = rng.gen_range(0.0..total);
        let idx = match cumulative.binary_search_by(|c| c.partial_cmp(&r).unwrap()) {
            Ok(i) => i,
            Err(i) => i,
        }
        .min(probs.len() - 1);
        *counts.entry(idx).or_insert(0) += 1;
    }
    counts
}

/// Collapse the distribution onto a subset of qubits: returns the marginal
/// probability of each bit pattern over `qubits` (pattern bit `j` = value of
/// `qubits[j]`).
pub fn marginal_probabilities(state: &StateVector, qubits: &[Qubit]) -> Vec<f64> {
    for &q in qubits {
        assert!(q < state.num_qubits());
    }
    let mut out = vec![0.0; 1 << qubits.len()];
    for (i, a) in state.amplitudes().iter().enumerate() {
        let mut pattern = 0usize;
        for (j, &q) in qubits.iter().enumerate() {
            pattern |= ((i >> q) & 1) << j;
        }
        out[pattern] += a.norm_sqr();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::run_circuit;
    use hisvsim_circuit::{generators, Circuit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plus_state_measures_half_half() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = run_circuit(&c);
        assert!((probability_of_one(&sv, 0) - 0.5).abs() < 1e-12);
        assert!(expectation_z(&sv, 0).abs() < 1e-12);
    }

    #[test]
    fn cat_state_marginals_are_correlated() {
        let sv = run_circuit(&generators::cat_state(6));
        let marg = marginal_probabilities(&sv, &[0, 5]);
        assert!((marg[0b00] - 0.5).abs() < 1e-12);
        assert!((marg[0b11] - 0.5).abs() < 1e-12);
        assert!(marg[0b01] < 1e-12);
        assert!(marg[0b10] < 1e-12);
    }

    #[test]
    fn bv_circuit_recovers_secret_deterministically() {
        // The data register of Bernstein-Vazirani measures exactly the
        // secret string.
        let n = 9;
        let sv = run_circuit(&generators::bv(n, 0xB5));
        let data_qubits: Vec<usize> = (0..n - 1).collect();
        let marg = marginal_probabilities(&sv, &data_qubits);
        let (best, p) = marg
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(*p > 0.999, "BV output is not deterministic: p = {p}");
        assert!(best > 0, "the seeded secret should be non-zero");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let sv = run_circuit(&generators::qft(8));
        let total: f64 = probabilities(&sv).iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn most_probable_finds_peak() {
        let sv = StateVector::basis_state(4, 11);
        assert_eq!(most_probable(&sv), (11, 1.0));
    }

    #[test]
    fn sampling_matches_distribution_roughly() {
        let mut c = Circuit::new(2);
        c.h(0); // uniform over {00, 01}
        let sv = run_circuit(&c);
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&sv, 4000, &mut rng);
        let ones = *counts.get(&1).unwrap_or(&0) as f64;
        let zeros = *counts.get(&0).unwrap_or(&0) as f64;
        assert_eq!(ones + zeros, 4000.0);
        assert!((ones / 4000.0 - 0.5).abs() < 0.05);
    }
}

//! Measurement and observable utilities on state vectors.
//!
//! The simulators in this workspace evolve the pure unitary part of a circuit
//! (as the paper's do); these helpers extract classical information from the
//! final state — marginal probabilities, shot sampling, and Pauli-Z
//! expectation values — which the examples and tests use to validate circuit
//! semantics end to end.

use crate::state::StateVector;
use hisvsim_circuit::Qubit;
use rand::Rng;
use rayon::prelude::*;

/// Below this many amplitudes the sequential loops win (same threshold
/// rationale as `kernels::ApplyOptions::parallel_threshold`).
const PARALLEL_THRESHOLD: usize = 1 << 14;

/// Probability that measuring `qubit` yields 1.
pub fn probability_of_one(state: &StateVector, qubit: Qubit) -> f64 {
    assert!(qubit < state.num_qubits());
    let mask = 1usize << qubit;
    state
        .amplitudes()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & mask != 0)
        .map(|(_, a)| a.norm_sqr())
        .sum()
}

/// Expectation value of Pauli-Z on `qubit`: `P(0) - P(1)`.
pub fn expectation_z(state: &StateVector, qubit: Qubit) -> f64 {
    1.0 - 2.0 * probability_of_one(state, qubit)
}

/// Full probability distribution over computational basis states.
///
/// Only sensible for small registers (the vector has `2^n` entries). The
/// squaring pass is embarrassingly parallel and memory-bound, so large
/// states are processed with rayon.
pub fn probabilities(state: &StateVector) -> Vec<f64> {
    let amps = state.amplitudes();
    let mut probs = vec![0.0f64; amps.len()];
    if amps.len() >= PARALLEL_THRESHOLD {
        probs
            .par_iter_mut()
            .enumerate()
            .for_each(|(i, p)| *p = amps[i].norm_sqr());
    } else {
        for (p, a) in probs.iter_mut().zip(amps) {
            *p = a.norm_sqr();
        }
    }
    probs
}

/// The most likely basis state and its probability.
///
/// Total on every input: an empty state reports `(0, 0.0)`, and `NaN`
/// probabilities (which can only arise from a corrupted state) never poison
/// the comparison — a `NaN` amplitude simply cannot win, so the result is
/// always a real entry of the distribution when one exists.
pub fn most_probable(state: &StateVector) -> (usize, f64) {
    let mut best = (0usize, 0.0f64);
    for (i, a) in state.amplitudes().iter().enumerate() {
        let p = a.norm_sqr();
        // `>` is false when `p` is NaN, so NaN entries are skipped rather
        // than propagated (f64::MIN-style seeds lose to a NaN-poisoned max).
        if p > best.1 {
            best = (i, p);
        }
    }
    best
}

/// Sample `shots` measurement outcomes (full-register, computational basis).
pub fn sample_counts<R: Rng>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> std::collections::BTreeMap<usize, usize> {
    let (cumulative, total) = cumulative_distribution(state);
    let mut counts = std::collections::BTreeMap::new();
    for _ in 0..shots {
        let r: f64 = rng.gen_range(0.0..total);
        *counts.entry(cdf_index(&cumulative, r)).or_insert(0) += 1;
    }
    counts
}

/// Cumulative distribution of the state (the squaring pass is parallel via
/// [`probabilities`]; the prefix sum is sequential and cheap next to it).
fn cumulative_distribution(state: &StateVector) -> (Vec<f64>, f64) {
    let mut cumulative = probabilities(state);
    let mut acc = 0.0;
    for c in cumulative.iter_mut() {
        acc += *c;
        *c = acc;
    }
    (cumulative, acc.max(f64::MIN_POSITIVE))
}

/// Basis state whose CDF bin contains `r ∈ [0, total)`.
#[inline]
fn cdf_index(cumulative: &[f64], r: f64) -> usize {
    match cumulative.binary_search_by(|c| c.partial_cmp(&r).unwrap()) {
        Ok(i) => i,
        Err(i) => i,
    }
    .min(cumulative.len() - 1)
}

/// Sample `shots` outcomes as a flat vector, in parallel.
///
/// This is the batch runtime's hot sampling path: every shot is an
/// independent draw against the cumulative distribution, so shots are
/// generated with a counter-based generator (SplitMix64 of `seed` + shot
/// index) and filled in parallel — deterministic for a given `seed`
/// regardless of thread count, unlike threading one sequential RNG through
/// a parallel loop.
pub fn sample_shots(state: &StateVector, shots: usize, seed: u64) -> Vec<usize> {
    #[inline]
    fn mix(seed: u64, index: u64) -> f64 {
        let mut z = seed.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    let (cumulative, total) = cumulative_distribution(state);
    let mut out = vec![0usize; shots];
    let fill = |(i, slot): (usize, &mut usize)| {
        *slot = cdf_index(&cumulative, mix(seed, i as u64) * total);
    };
    if shots >= 1024 {
        out.par_iter_mut().enumerate().for_each(fill);
    } else {
        out.iter_mut().enumerate().for_each(fill);
    }
    out
}

/// Collapse the distribution onto a subset of qubits: returns the marginal
/// probability of each bit pattern over `qubits` (pattern bit `j` = value of
/// `qubits[j]`).
pub fn marginal_probabilities(state: &StateVector, qubits: &[Qubit]) -> Vec<f64> {
    for &q in qubits {
        assert!(q < state.num_qubits());
    }
    let mut out = vec![0.0; 1 << qubits.len()];
    for (i, a) in state.amplitudes().iter().enumerate() {
        let mut pattern = 0usize;
        for (j, &q) in qubits.iter().enumerate() {
            pattern |= ((i >> q) & 1) << j;
        }
        out[pattern] += a.norm_sqr();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::run_circuit;
    use hisvsim_circuit::{generators, Circuit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn plus_state_measures_half_half() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = run_circuit(&c);
        assert!((probability_of_one(&sv, 0) - 0.5).abs() < 1e-12);
        assert!(expectation_z(&sv, 0).abs() < 1e-12);
    }

    #[test]
    fn cat_state_marginals_are_correlated() {
        let sv = run_circuit(&generators::cat_state(6));
        let marg = marginal_probabilities(&sv, &[0, 5]);
        assert!((marg[0b00] - 0.5).abs() < 1e-12);
        assert!((marg[0b11] - 0.5).abs() < 1e-12);
        assert!(marg[0b01] < 1e-12);
        assert!(marg[0b10] < 1e-12);
    }

    #[test]
    fn bv_circuit_recovers_secret_deterministically() {
        // The data register of Bernstein-Vazirani measures exactly the
        // secret string.
        let n = 9;
        let sv = run_circuit(&generators::bv(n, 0xB5));
        let data_qubits: Vec<usize> = (0..n - 1).collect();
        let marg = marginal_probabilities(&sv, &data_qubits);
        let (best, p) = marg
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!(*p > 0.999, "BV output is not deterministic: p = {p}");
        assert!(best > 0, "the seeded secret should be non-zero");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let sv = run_circuit(&generators::qft(8));
        let total: f64 = probabilities(&sv).iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn most_probable_finds_peak() {
        let sv = StateVector::basis_state(4, 11);
        assert_eq!(most_probable(&sv), (11, 1.0));
    }

    #[test]
    fn most_probable_is_total_on_degenerate_input() {
        // Empty register: one amplitude (the scalar 1), index 0.
        let sv = StateVector::zero_state(0);
        assert_eq!(most_probable(&sv), (0, 1.0));
        // All-zero amplitudes (not a physical state, but must not panic or
        // return garbage indices).
        let sv = StateVector::from_amplitudes(vec![Default::default(); 8]);
        assert_eq!(most_probable(&sv), (0, 0.0));
    }

    #[test]
    fn probabilities_parallel_path_matches_sequential() {
        // 15 qubits crosses PARALLEL_THRESHOLD (2^14).
        let sv = run_circuit(&generators::qft(15));
        let probs = probabilities(&sv);
        assert_eq!(probs.len(), 1 << 15);
        for (i, &p) in probs.iter().enumerate() {
            assert_eq!(p, sv.amp(i).norm_sqr());
        }
    }

    #[test]
    fn sample_shots_is_deterministic_and_distribution_faithful() {
        let mut c = Circuit::new(2);
        c.h(0); // uniform over {00, 01}
        let sv = run_circuit(&c);
        let a = sample_shots(&sv, 4096, 99);
        let b = sample_shots(&sv, 4096, 99);
        assert_eq!(a, b, "same seed must reproduce the same shots");
        assert_ne!(a, sample_shots(&sv, 4096, 100));
        let ones = a.iter().filter(|&&s| s == 1).count() as f64;
        assert!(a.iter().all(|&s| s < 2), "only |00⟩ and |01⟩ have support");
        assert!((ones / 4096.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn sample_shots_agrees_with_sample_counts_statistically() {
        let sv = run_circuit(&generators::cat_state(5));
        let shots = sample_shots(&sv, 4000, 7);
        let zeros = shots.iter().filter(|&&s| s == 0).count();
        let ones = shots.iter().filter(|&&s| s == 0b11111).count();
        assert_eq!(
            zeros + ones,
            4000,
            "GHZ has support only on the two cat states"
        );
        assert!((zeros as f64 / 4000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn sampling_matches_distribution_roughly() {
        let mut c = Circuit::new(2);
        c.h(0); // uniform over {00, 01}
        let sv = run_circuit(&c);
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sample_counts(&sv, 4000, &mut rng);
        let ones = *counts.get(&1).unwrap_or(&0) as f64;
        let zeros = *counts.get(&0).unwrap_or(&0) as f64;
        assert_eq!(ones + zeros, 4000.0);
        assert!((ones / 4000.0 - 0.5).abs() < 0.05);
    }
}

//! The dense state-vector container and basic linear-algebra operations on
//! quantum states.

use hisvsim_circuit::Complex64;
use serde::{Deserialize, Serialize};

/// A dense `n`-qubit quantum state: `2^n` complex amplitudes, little-endian
/// (qubit 0 is the least-significant bit of the amplitude index).
///
/// Each amplitude is 16 bytes, so the memory footprint is `2^{n+4}` bytes —
/// the quantity the paper's Table I reports per benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero_state(num_qubits: usize) -> Self {
        assert!(
            num_qubits < usize::BITS as usize - 4,
            "state of {num_qubits} qubits cannot be indexed on this platform"
        );
        let mut amps = vec![Complex64::ZERO; 1usize << num_qubits];
        amps[0] = Complex64::ONE;
        Self { num_qubits, amps }
    }

    /// A computational basis state `|index⟩`.
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        let mut sv = Self::zero_state(num_qubits);
        sv.amps[0] = Complex64::ZERO;
        sv.amps[index] = Complex64::ONE;
        sv
    }

    /// Build a state from raw amplitudes; the length must be a power of two.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(
            amps.len().is_power_of_two(),
            "length must be a power of two"
        );
        let num_qubits = amps.len().trailing_zeros() as usize;
        Self { num_qubits, amps }
    }

    /// An unnormalised state of all-zero amplitudes, used as a scratch target
    /// for gather/scatter and distributed exchanges.
    pub fn uninitialized(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            amps: vec![Complex64::ZERO; 1usize << num_qubits],
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of amplitudes (`2^n`).
    #[inline]
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always false — a state vector has at least one amplitude.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Read-only amplitude slice.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable amplitude slice.
    #[inline]
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Consume the state and return its amplitudes.
    pub fn into_amplitudes(self) -> Vec<Complex64> {
        self.amps
    }

    /// Encode the amplitudes as little-endian bytes (`re`, `im` f64 pairs)
    /// — the wire shape `hisvsim-net` ships state slices in.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        amplitudes_to_le_bytes(&self.amps)
    }

    /// Decode a state from [`StateVector::to_le_bytes`] output. Panics if
    /// the byte count is not a power-of-two multiple of 16.
    pub fn from_le_bytes(bytes: &[u8]) -> Self {
        Self::from_amplitudes(amplitudes_from_le_bytes(bytes))
    }

    /// Single amplitude accessor.
    #[inline]
    pub fn amp(&self, index: usize) -> Complex64 {
        self.amps[index]
    }

    /// Total probability mass `Σ |a_i|^2` (1.0 for a normalised state).
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Normalise the state in place; returns the norm that was divided out.
    pub fn normalize(&mut self) -> f64 {
        let norm = self.norm_sqr().sqrt();
        if norm > 0.0 {
            let inv = 1.0 / norm;
            for a in &mut self.amps {
                *a = a.scale(inv);
            }
        }
        norm
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        self.amps
            .iter()
            .zip(other.amps.iter())
            .fold(Complex64::ZERO, |acc, (a, b)| acc.mul_add(a.conj(), *b))
    }

    /// Fidelity `|⟨self|other⟩|^2` between two (normalised) states.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Probability of measuring the computational basis state `index`.
    #[inline]
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Largest absolute per-component difference against another state.
    pub fn max_abs_diff(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| {
                let d = *a - *b;
                d.re.abs().max(d.im.abs())
            })
            .fold(0.0, f64::max)
    }

    /// True when every amplitude matches `other` within `tol`.
    pub fn approx_eq(&self, other: &StateVector, tol: f64) -> bool {
        self.num_qubits == other.num_qubits && self.max_abs_diff(other) <= tol
    }

    /// True when every amplitude is finite (no NaN/Inf crept in).
    pub fn is_finite(&self) -> bool {
        self.amps.iter().all(|a| a.is_finite())
    }
}

/// Encode a slice of amplitudes as little-endian bytes: 16 bytes per
/// amplitude, `re` then `im`, each an IEEE-754 f64. Bit-exact — the decode
/// of an encode reproduces the identical amplitudes, which is what lets a
/// multi-process run promise bit-identical results to an in-process one.
pub fn amplitudes_to_le_bytes(amps: &[Complex64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(amps.len() * 16);
    for amp in amps {
        out.extend_from_slice(&amp.re.to_le_bytes());
        out.extend_from_slice(&amp.im.to_le_bytes());
    }
    out
}

/// Decode amplitudes from [`amplitudes_to_le_bytes`] output. Panics if the
/// byte count is not a multiple of 16.
pub fn amplitudes_from_le_bytes(bytes: &[u8]) -> Vec<Complex64> {
    assert!(
        bytes.len().is_multiple_of(16),
        "amplitude byte stream length {} is not a multiple of 16",
        bytes.len()
    );
    bytes
        .chunks_exact(16)
        .map(|chunk| {
            Complex64::new(
                f64::from_le_bytes(chunk[0..8].try_into().unwrap()),
                f64::from_le_bytes(chunk[8..16].try_into().unwrap()),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_state_has_unit_amplitude_at_origin() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.len(), 8);
        assert_eq!(sv.amp(0), Complex64::ONE);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-15);
        assert!(sv.is_finite());
    }

    #[test]
    fn basis_state_places_amplitude() {
        let sv = StateVector::basis_state(3, 5);
        assert_eq!(sv.amp(5), Complex64::ONE);
        assert_eq!(sv.probability(5), 1.0);
        assert_eq!(sv.probability(0), 0.0);
    }

    #[test]
    fn from_amplitudes_infers_width() {
        let sv = StateVector::from_amplitudes(vec![Complex64::ONE; 16]);
        assert_eq!(sv.num_qubits(), 4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_rejects_bad_length() {
        let _ = StateVector::from_amplitudes(vec![Complex64::ONE; 3]);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut sv = StateVector::from_amplitudes(vec![Complex64::new(3.0, 0.0); 4]);
        let norm = sv.normalize();
        assert!((norm - 6.0).abs() < 1e-12);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::basis_state(2, 1);
        let b = StateVector::basis_state(2, 1);
        let c = StateVector::basis_state(2, 2);
        assert!(a.inner_product(&b).approx_eq(Complex64::ONE, 1e-15));
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-15);
        assert!(a.fidelity(&c) < 1e-15);
    }

    #[test]
    fn le_byte_roundtrip_is_bit_exact() {
        let amps: Vec<Complex64> = (0..8)
            .map(|i| Complex64::new((i as f64).sqrt(), -(i as f64) / 7.0))
            .collect();
        let sv = StateVector::from_amplitudes(amps);
        let bytes = sv.to_le_bytes();
        assert_eq!(bytes.len(), 8 * 16);
        let back = StateVector::from_le_bytes(&bytes);
        // Bit-exact, not approx: the wire format must not perturb results.
        assert_eq!(sv, back);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn truncated_byte_stream_is_rejected() {
        let _ = amplitudes_from_le_bytes(&[0u8; 24]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = StateVector::zero_state(2);
        let mut b = StateVector::zero_state(2);
        b.amplitudes_mut()[3] = Complex64::new(0.0, 0.25);
        assert!((a.max_abs_diff(&b) - 0.25).abs() < 1e-15);
        assert!(!a.approx_eq(&b, 1e-3));
        assert!(a.approx_eq(&b, 0.3));
    }
}

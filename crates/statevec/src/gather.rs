//! Gather/scatter primitives between an *outer* state vector and a smaller
//! *inner* state vector — the data-movement half of the paper's
//! Gather–Execute–Scatter model (Algorithm 1).
//!
//! A part of a partitioned circuit touches a working set of `w` qubits
//! `S = [S_0, …, S_{w-1}]` (outer qubit indices). For each assignment of the
//! `t = n - w` *free* qubits, the `2^w` amplitudes addressed by that
//! assignment are gathered into an inner state vector (inner qubit `j`
//! corresponds to outer qubit `S_j`), the part's gates are executed on it,
//! and the results are scattered back to the same outer positions.

use crate::state::StateVector;
use hisvsim_circuit::Qubit;

/// Precomputed index arithmetic for moving amplitudes between an outer state
/// of `n` qubits and an inner state over the working-set qubits `S`.
#[derive(Debug, Clone)]
pub struct GatherMap {
    outer_qubits: usize,
    /// Outer qubit index of each inner qubit position.
    part_qubits: Vec<Qubit>,
    /// Outer qubit indices not in the part, ascending.
    free_qubits: Vec<Qubit>,
    /// Outer-index offset contributed by each inner index (dense table of
    /// size `2^w`, built incrementally).
    inner_offsets: Vec<usize>,
}

impl GatherMap {
    /// Build the map for a part whose gates touch `part_qubits` (inner qubit
    /// `j` = outer qubit `part_qubits[j]`) inside an `outer_qubits`-wide
    /// state.
    pub fn new(outer_qubits: usize, part_qubits: &[Qubit]) -> Self {
        assert!(
            !part_qubits.is_empty(),
            "a part must touch at least one qubit"
        );
        assert!(
            part_qubits.len() <= outer_qubits,
            "part touches {} qubits but the outer state has {}",
            part_qubits.len(),
            outer_qubits
        );
        let mut seen = vec![false; outer_qubits];
        for &q in part_qubits {
            assert!(q < outer_qubits, "part qubit {q} out of range");
            assert!(!seen[q], "part qubit {q} listed twice");
            seen[q] = true;
        }
        let free_qubits: Vec<Qubit> = (0..outer_qubits).filter(|&q| !seen[q]).collect();

        // inner_offsets[j] = Σ_{bit b set in j} 2^{part_qubits[b]}
        let w = part_qubits.len();
        let mut inner_offsets = vec![0usize; 1 << w];
        for j in 1..(1usize << w) {
            let low_bit = j.trailing_zeros() as usize;
            inner_offsets[j] = inner_offsets[j & (j - 1)] + (1usize << part_qubits[low_bit]);
        }

        Self {
            outer_qubits,
            part_qubits: part_qubits.to_vec(),
            free_qubits,
            inner_offsets,
        }
    }

    /// Number of qubits in the part (width of the inner state vector).
    #[inline]
    pub fn inner_qubits(&self) -> usize {
        self.part_qubits.len()
    }

    /// Number of free (not-in-part) qubits; the gather/execute/scatter loop
    /// iterates over `2^free_qubits()` assignments.
    #[inline]
    pub fn num_free_qubits(&self) -> usize {
        self.free_qubits.len()
    }

    /// The outer qubit index backing each inner qubit position.
    #[inline]
    pub fn part_qubits(&self) -> &[Qubit] {
        &self.part_qubits
    }

    /// The outer qubit indices not covered by the part, ascending.
    #[inline]
    pub fn free_qubits(&self) -> &[Qubit] {
        &self.free_qubits
    }

    /// The outer base index for a given assignment (bit `k` of `assignment`
    /// is the value of free qubit `free_qubits[k]`).
    #[inline]
    pub fn base_index(&self, assignment: usize) -> usize {
        debug_assert!(assignment < (1usize << self.free_qubits.len()));
        let mut base = 0usize;
        let mut bits = assignment;
        while bits != 0 {
            let k = bits.trailing_zeros() as usize;
            base |= 1usize << self.free_qubits[k];
            bits &= bits - 1;
        }
        base
    }

    /// The outer index corresponding to inner index `inner` under the given
    /// free-qubit assignment.
    #[inline]
    pub fn outer_index(&self, assignment: usize, inner: usize) -> usize {
        self.base_index(assignment) + self.inner_offsets[inner]
    }

    /// Gather the amplitudes for one free-qubit assignment into a fresh inner
    /// state vector (paper Algorithm 1, the *Gather* loop).
    pub fn gather(&self, outer: &StateVector, assignment: usize) -> StateVector {
        assert_eq!(outer.num_qubits(), self.outer_qubits);
        let base = self.base_index(assignment);
        let mut inner = StateVector::uninitialized(self.inner_qubits());
        let outer_amps = outer.amplitudes();
        let inner_amps = inner.amplitudes_mut();
        for (j, slot) in inner_amps.iter_mut().enumerate() {
            *slot = outer_amps[base + self.inner_offsets[j]];
        }
        inner
    }

    /// Gather into an existing inner buffer (avoids reallocating per
    /// assignment in the hot loop).
    pub fn gather_into(&self, outer: &StateVector, assignment: usize, inner: &mut StateVector) {
        assert_eq!(outer.num_qubits(), self.outer_qubits);
        assert_eq!(inner.num_qubits(), self.inner_qubits());
        let base = self.base_index(assignment);
        let outer_amps = outer.amplitudes();
        let inner_amps = inner.amplitudes_mut();
        for (j, slot) in inner_amps.iter_mut().enumerate() {
            *slot = outer_amps[base + self.inner_offsets[j]];
        }
    }

    /// Scatter an inner state vector back into the outer state (the *Scatter*
    /// loop of Algorithm 1).
    pub fn scatter(&self, inner: &StateVector, outer: &mut StateVector, assignment: usize) {
        assert_eq!(outer.num_qubits(), self.outer_qubits);
        assert_eq!(inner.num_qubits(), self.inner_qubits());
        let base = self.base_index(assignment);
        let inner_amps = inner.amplitudes();
        let outer_amps = outer.amplitudes_mut();
        for (j, &amp) in inner_amps.iter().enumerate() {
            outer_amps[base + self.inner_offsets[j]] = amp;
        }
    }

    /// The qubit remapping table `map[outer_qubit] = Some(inner_qubit)` for
    /// rewriting a part's gates onto the inner register.
    pub fn remap_table(&self) -> Vec<Option<Qubit>> {
        let mut map = vec![None; self.outer_qubits];
        for (inner, &outer) in self.part_qubits.iter().enumerate() {
            map[outer] = Some(inner);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{apply_circuit_with, run_circuit, ApplyOptions};
    use hisvsim_circuit::{generators, Circuit, Complex64};

    #[test]
    fn gather_map_basic_indexing() {
        // 4-qubit outer state, part = qubits [1, 3].
        let map = GatherMap::new(4, &[1, 3]);
        assert_eq!(map.inner_qubits(), 2);
        assert_eq!(map.num_free_qubits(), 2);
        assert_eq!(map.free_qubits(), &[0, 2]);
        // assignment bits: bit0 -> qubit0, bit1 -> qubit2.
        assert_eq!(map.base_index(0b00), 0b0000);
        assert_eq!(map.base_index(0b01), 0b0001);
        assert_eq!(map.base_index(0b10), 0b0100);
        assert_eq!(map.base_index(0b11), 0b0101);
        // inner index bits: bit0 -> qubit1, bit1 -> qubit3.
        assert_eq!(map.outer_index(0b00, 0b01), 0b0010);
        assert_eq!(map.outer_index(0b00, 0b10), 0b1000);
        assert_eq!(map.outer_index(0b11, 0b11), 0b1111);
    }

    #[test]
    fn gather_then_scatter_is_identity() {
        let c = generators::random_circuit(5, 30, 3);
        let outer = run_circuit(&c);
        let map = GatherMap::new(5, &[4, 0, 2]);
        let mut rebuilt = StateVector::uninitialized(5);
        for assignment in 0..(1 << map.num_free_qubits()) {
            let inner = map.gather(&outer, assignment);
            map.scatter(&inner, &mut rebuilt, assignment);
        }
        assert!(rebuilt.approx_eq(&outer, 0.0));
    }

    #[test]
    fn gather_partitions_are_disjoint_and_exhaustive() {
        let map = GatherMap::new(6, &[5, 1]);
        let mut seen = [false; 1 << 6];
        for assignment in 0..(1 << map.num_free_qubits()) {
            for inner in 0..(1 << map.inner_qubits()) {
                let idx = map.outer_index(assignment, inner);
                assert!(!seen[idx], "outer index {idx} covered twice");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some outer indices never covered");
    }

    #[test]
    fn executing_a_part_via_gather_scatter_matches_flat_simulation() {
        // The core of Algorithm 1 on a single part: a sub-circuit touching
        // qubits {0, 2} of a 5-qubit state.
        let mut full = Circuit::new(5);
        full.h(0).h(1).cx(1, 3).ry(0.4, 2).cx(0, 2).rz(0.3, 2);

        // Flat reference.
        let expected = run_circuit(&full);

        // Hierarchical: run the first part {h0,h1,cx13} flat, then the part
        // on {0,2} via gather-execute-scatter.
        let mut prefix = Circuit::new(5);
        prefix.h(0).h(1).cx(1, 3);
        let mut part = Circuit::new(5);
        part.ry(0.4, 2).cx(0, 2).rz(0.3, 2);

        let mut outer = run_circuit(&prefix);
        let map = GatherMap::new(5, &[0, 2]);
        let inner_circuit = part.remap_qubits(&map.remap_table(), map.inner_qubits());
        let opts = ApplyOptions::sequential();
        let mut inner = StateVector::uninitialized(map.inner_qubits());
        for assignment in 0..(1 << map.num_free_qubits()) {
            map.gather_into(&outer, assignment, &mut inner);
            apply_circuit_with(&mut inner, &inner_circuit, &opts);
            map.scatter(&inner, &mut outer, assignment);
        }
        assert!(outer.approx_eq(&expected, 1e-10));
    }

    #[test]
    fn remap_table_maps_part_qubits_in_order() {
        let map = GatherMap::new(6, &[4, 1, 5]);
        let table = map.remap_table();
        assert_eq!(table[4], Some(0));
        assert_eq!(table[1], Some(1));
        assert_eq!(table[5], Some(2));
        assert_eq!(table[0], None);
    }

    #[test]
    fn gather_reads_expected_amplitudes() {
        // Outer state with amp(i) = i for easy checking.
        let amps: Vec<Complex64> = (0..16).map(|i| Complex64::real(i as f64)).collect();
        let outer = StateVector::from_amplitudes(amps);
        let map = GatherMap::new(4, &[2, 0]); // inner bit0 -> qubit2, bit1 -> qubit0
        let inner = map.gather(&outer, 0b00);
        assert_eq!(inner.amp(0b00).re, 0.0);
        assert_eq!(inner.amp(0b01).re, 4.0); // qubit2 set
        assert_eq!(inner.amp(0b10).re, 1.0); // qubit0 set
        assert_eq!(inner.amp(0b11).re, 5.0);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_part_qubits_rejected() {
        let _ = GatherMap::new(4, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_part_qubit_rejected() {
        let _ = GatherMap::new(4, &[9]);
    }
}

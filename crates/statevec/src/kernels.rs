//! Gate-application kernels.
//!
//! The paper's Sec. III-A analysis: applying a gate is a sweep of "scoped"
//! small matrix–vector products over the state vector, with an operational
//! intensity of 7/16 FLOP/byte — firmly memory bound. The kernels here are
//! therefore organised around access pattern, not arithmetic:
//!
//! * single-qubit gates use a contiguous two-half block sweep (the pattern of
//!   Fig. 1), parallelised over blocks with rayon;
//! * diagonal gates use a pure streaming elementwise pass;
//! * controlled gates only touch the half of the state where the control bit
//!   is set;
//! * arbitrary k-qubit gates fall back to a gather/apply/scatter of 2^k
//!   amplitudes per index group, parallelised over groups.
//!
//! All parallel paths partition the amplitude indices into disjoint groups, so
//! they are data-race free by construction.

use crate::state::StateVector;
use hisvsim_circuit::{Complex64, Gate, GateKind, Qubit, UnitaryMatrix};
use rayon::prelude::*;

/// Controls how kernels execute.
#[derive(Debug, Clone, Copy)]
pub struct ApplyOptions {
    /// Use rayon data parallelism when the state is large enough.
    pub parallel: bool,
    /// Minimum number of amplitudes before the parallel path is taken;
    /// below this the sequential loop is faster than the fork/join overhead.
    pub parallel_threshold: usize,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        Self {
            parallel: true,
            parallel_threshold: 1 << 14,
        }
    }
}

impl ApplyOptions {
    /// Fully sequential execution (used by the per-rank local engines, which
    /// already parallelise across ranks).
    pub fn sequential() -> Self {
        Self {
            parallel: false,
            parallel_threshold: usize::MAX,
        }
    }

    #[inline]
    fn go_parallel(&self, len: usize) -> bool {
        self.parallel && len >= self.parallel_threshold
    }
}

/// Apply a gate to a state vector using the default options.
pub fn apply_gate(state: &mut StateVector, gate: &Gate) {
    apply_gate_with(state, gate, &ApplyOptions::default());
}

/// Apply a gate to a state vector with explicit execution options.
pub fn apply_gate_with(state: &mut StateVector, gate: &Gate, opts: &ApplyOptions) {
    let n = state.num_qubits();
    for &q in &gate.qubits {
        assert!(q < n, "gate touches qubit {q} but the state has {n} qubits");
    }
    match (&gate.kind, gate.qubits.as_slice()) {
        (GateKind::I, _) => {}
        // Dedicated fast paths for the most common structures.
        (GateKind::X, &[q]) => apply_x(state, q, opts),
        (GateKind::Cx, &[c, t]) => apply_cx(state, c, t, opts),
        (GateKind::Cz, &[c, t]) => apply_cz(state, c, t, opts),
        (GateKind::Swap, &[a, b]) => apply_swap(state, a, b, opts),
        (kind, &[q]) if kind.is_diagonal() => {
            let m = kind.matrix();
            apply_diagonal_single(state, q, m.get(0, 0), m.get(1, 1), opts);
        }
        (kind, &[q]) => {
            let m = kind.matrix();
            let mat = [m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1)];
            apply_single(state, q, &mat, opts);
        }
        (kind, &[c, t]) if kind.num_controls() == 1 => {
            // Controlled single-qubit gate: apply the 2x2 block on the target
            // restricted to the control=1 half.
            let m = kind.matrix();
            let mat = [m.get(1, 1), m.get(1, 3), m.get(3, 1), m.get(3, 3)];
            apply_controlled_single(state, c, t, &mat, opts);
        }
        (kind, &[a, b]) if kind.is_diagonal() => {
            let m = kind.matrix();
            let diag = [m.get(0, 0), m.get(1, 1), m.get(2, 2), m.get(3, 3)];
            apply_diagonal_two(state, a, b, &diag, opts);
        }
        _ => {
            let m = gate.matrix();
            apply_k_qubit(state, &gate.qubits, &m, opts);
        }
    }
}

/// Apply every gate of a circuit to the state, in order.
pub fn apply_circuit(state: &mut StateVector, circuit: &hisvsim_circuit::Circuit) {
    apply_circuit_with(state, circuit, &ApplyOptions::default());
}

/// Apply every gate of a circuit with explicit execution options.
pub fn apply_circuit_with(
    state: &mut StateVector,
    circuit: &hisvsim_circuit::Circuit,
    opts: &ApplyOptions,
) {
    assert!(
        circuit.num_qubits() <= state.num_qubits(),
        "circuit needs {} qubits, state has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    for gate in circuit.gates() {
        apply_gate_with(state, gate, opts);
    }
}

/// Run a circuit from `|0…0⟩` and return the resulting state.
///
/// This is the *flat* (non-hierarchical) reference simulator every other
/// engine in the workspace is validated against.
pub fn run_circuit(circuit: &hisvsim_circuit::Circuit) -> StateVector {
    run_circuit_with(circuit, &ApplyOptions::default())
}

/// Run a circuit from `|0…0⟩` with explicit options.
pub fn run_circuit_with(circuit: &hisvsim_circuit::Circuit, opts: &ApplyOptions) -> StateVector {
    let mut state = StateVector::zero_state(circuit.num_qubits());
    apply_circuit_with(&mut state, circuit, opts);
    state
}

// ---------------------------------------------------------------------------
// single-qubit kernels
// ---------------------------------------------------------------------------

/// Apply a dense 2×2 matrix `[m00, m01, m10, m11]` on qubit `q`.
pub fn apply_single(state: &mut StateVector, q: Qubit, m: &[Complex64; 4], opts: &ApplyOptions) {
    let len = state.len();
    let half = 1usize << q;
    let block = half << 1;
    let m = *m;
    let work = move |chunk: &mut [Complex64]| {
        let (lo, hi) = chunk.split_at_mut(half);
        for j in 0..half {
            let a = lo[j];
            let b = hi[j];
            lo[j] = Complex64::ZERO.mul_add(m[0], a).mul_add(m[1], b);
            hi[j] = Complex64::ZERO.mul_add(m[2], a).mul_add(m[3], b);
        }
    };
    let amps = state.amplitudes_mut();
    if opts.go_parallel(len) && len / block >= 2 {
        amps.par_chunks_mut(block).for_each(work);
    } else if opts.go_parallel(len) {
        // The gate acts on one of the top qubits: only one block exists, so
        // parallelise the inner loop instead.
        let (lo, hi) = amps.split_at_mut(half);
        lo.par_iter_mut().zip(hi.par_iter_mut()).for_each(|(a, b)| {
            let x = *a;
            let y = *b;
            *a = Complex64::ZERO.mul_add(m[0], x).mul_add(m[1], y);
            *b = Complex64::ZERO.mul_add(m[2], x).mul_add(m[3], y);
        });
    } else {
        amps.chunks_mut(block).for_each(work);
    }
}

/// Apply a diagonal single-qubit gate `diag(d0, d1)` on qubit `q`.
pub fn apply_diagonal_single(
    state: &mut StateVector,
    q: Qubit,
    d0: Complex64,
    d1: Complex64,
    opts: &ApplyOptions,
) {
    let len = state.len();
    let mask = 1usize << q;
    let amps = state.amplitudes_mut();
    let update = move |(i, a): (usize, &mut Complex64)| {
        *a *= if i & mask == 0 { d0 } else { d1 };
    };
    if opts.go_parallel(len) {
        amps.par_iter_mut().enumerate().for_each(update);
    } else {
        amps.iter_mut().enumerate().for_each(update);
    }
}

/// Apply a Pauli-X on qubit `q` (pure swap of the two halves of every block).
pub fn apply_x(state: &mut StateVector, q: Qubit, opts: &ApplyOptions) {
    let len = state.len();
    let half = 1usize << q;
    let block = half << 1;
    let work = move |chunk: &mut [Complex64]| {
        let (lo, hi) = chunk.split_at_mut(half);
        lo.swap_with_slice(hi);
    };
    let amps = state.amplitudes_mut();
    if opts.go_parallel(len) && len / block >= 2 {
        amps.par_chunks_mut(block).for_each(work);
    } else {
        amps.chunks_mut(block).for_each(work);
    }
}

// ---------------------------------------------------------------------------
// controlled / two-qubit kernels
// ---------------------------------------------------------------------------

/// Apply a 2×2 matrix on `target`, conditioned on `control` being 1.
pub fn apply_controlled_single(
    state: &mut StateVector,
    control: Qubit,
    target: Qubit,
    m: &[Complex64; 4],
    opts: &ApplyOptions,
) {
    let len = state.len();
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    let m = *m;
    let amps_ptr = SharedAmps::new(state.amplitudes_mut());
    let groups = len >> 2;
    let (qa, qb) = (control.min(target), control.max(target));
    let apply_group = move |k: usize| {
        // Spread the group index over all non-gate bit positions.
        let i_base = spread2(k, qa, qb);
        let i = i_base | cmask; // control bit set, target bit 0
        let j = i | tmask;
        // SAFETY: every (i, j) pair is unique across k values because the
        // gate-qubit bits are fixed and the remaining bits enumerate k.
        unsafe {
            let a = amps_ptr.read(i);
            let b = amps_ptr.read(j);
            amps_ptr.write(i, Complex64::ZERO.mul_add(m[0], a).mul_add(m[1], b));
            amps_ptr.write(j, Complex64::ZERO.mul_add(m[2], a).mul_add(m[3], b));
        }
    };
    if opts.go_parallel(len) {
        (0..groups).into_par_iter().for_each(apply_group);
    } else {
        (0..groups).for_each(apply_group);
    }
}

/// Apply a CNOT (control, target).
pub fn apply_cx(state: &mut StateVector, control: Qubit, target: Qubit, opts: &ApplyOptions) {
    let x = GateKind::X.matrix();
    let m = [x.get(0, 0), x.get(0, 1), x.get(1, 0), x.get(1, 1)];
    apply_controlled_single(state, control, target, &m, opts);
}

/// Apply a CZ (symmetric): flip the sign of amplitudes where both bits are 1.
pub fn apply_cz(state: &mut StateVector, a: Qubit, b: Qubit, opts: &ApplyOptions) {
    let len = state.len();
    let mask = (1usize << a) | (1usize << b);
    let amps = state.amplitudes_mut();
    let update = move |(i, amp): (usize, &mut Complex64)| {
        if i & mask == mask {
            *amp = -*amp;
        }
    };
    if opts.go_parallel(len) {
        amps.par_iter_mut().enumerate().for_each(update);
    } else {
        amps.iter_mut().enumerate().for_each(update);
    }
}

/// Apply a SWAP between qubits `a` and `b`.
pub fn apply_swap(state: &mut StateVector, a: Qubit, b: Qubit, opts: &ApplyOptions) {
    let len = state.len();
    let amask = 1usize << a;
    let bmask = 1usize << b;
    let amps_ptr = SharedAmps::new(state.amplitudes_mut());
    let groups = len >> 2;
    let (qa, qb) = (a.min(b), a.max(b));
    let apply_group = move |k: usize| {
        let base = spread2(k, qa, qb);
        let i = base | amask; // a=1, b=0
        let j = base | bmask; // a=0, b=1
                              // SAFETY: disjoint index groups (see apply_controlled_single).
        unsafe {
            let x = amps_ptr.read(i);
            let y = amps_ptr.read(j);
            amps_ptr.write(i, y);
            amps_ptr.write(j, x);
        }
    };
    if opts.go_parallel(len) {
        (0..groups).into_par_iter().for_each(apply_group);
    } else {
        (0..groups).for_each(apply_group);
    }
}

/// Apply a diagonal two-qubit gate `diag(d00, d01, d10, d11)` where the digit
/// order is (qubit `b`, qubit `a`) — i.e. `d01` multiplies states with a=1,
/// b=0, matching the operand-0-is-LSB matrix convention.
pub fn apply_diagonal_two(
    state: &mut StateVector,
    a: Qubit,
    b: Qubit,
    diag: &[Complex64; 4],
    opts: &ApplyOptions,
) {
    let len = state.len();
    let amask = 1usize << a;
    let bmask = 1usize << b;
    let diag = *diag;
    let amps = state.amplitudes_mut();
    let update = move |(i, amp): (usize, &mut Complex64)| {
        let idx = ((i & amask != 0) as usize) | (((i & bmask != 0) as usize) << 1);
        *amp *= diag[idx];
    };
    if opts.go_parallel(len) {
        amps.par_iter_mut().enumerate().for_each(update);
    } else {
        amps.iter_mut().enumerate().for_each(update);
    }
}

// ---------------------------------------------------------------------------
// generic k-qubit kernel
// ---------------------------------------------------------------------------

/// Apply an arbitrary `k`-qubit unitary to the given (distinct) qubits.
///
/// Operand `qubits[j]` corresponds to bit `j` of the matrix index, matching
/// [`GateKind::matrix`]'s convention.
pub fn apply_k_qubit(
    state: &mut StateVector,
    qubits: &[Qubit],
    matrix: &UnitaryMatrix,
    opts: &ApplyOptions,
) {
    let k = qubits.len();
    assert_eq!(matrix.dim(), 1 << k, "matrix dimension mismatch");
    let len = state.len();
    assert!(len >= 1 << k, "state too small for a {k}-qubit gate");
    let groups = len >> k;

    // Sorted qubit positions for spreading the group index.
    let mut sorted: Vec<Qubit> = qubits.to_vec();
    sorted.sort_unstable();

    // Per-matrix-bit masks in state-index space.
    let bit_masks: Vec<usize> = qubits.iter().map(|&q| 1usize << q).collect();
    let dim = 1usize << k;

    let amps_ptr = SharedAmps::new(state.amplitudes_mut());
    let matrix = matrix.clone();
    let apply_group = move |g: usize| {
        // Build the base state index with zeros in all gate-qubit positions.
        let mut base = g;
        for &q in &sorted {
            let low = base & ((1usize << q) - 1);
            base = ((base >> q) << (q + 1)) | low;
        }
        // Gather the 2^k amplitudes of this group.
        let mut local = vec![Complex64::ZERO; dim];
        let mut indices = vec![0usize; dim];
        for (sub, slot) in indices.iter_mut().enumerate() {
            let mut idx = base;
            for (bit, mask) in bit_masks.iter().enumerate() {
                if (sub >> bit) & 1 == 1 {
                    idx |= mask;
                }
            }
            *slot = idx;
            // SAFETY: groups are disjoint — all gate-qubit bits are fixed per
            // sub-index and the base enumerates the remaining bits uniquely.
            local[sub] = unsafe { amps_ptr.read(idx) };
        }
        for (row, &idx) in indices.iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for (col, &amp) in local.iter().enumerate() {
                acc = acc.mul_add(matrix.get(row, col), amp);
            }
            unsafe { amps_ptr.write(idx, acc) };
        }
    };
    if opts.go_parallel(len) {
        (0..groups).into_par_iter().for_each(apply_group);
    } else {
        (0..groups).for_each(apply_group);
    }
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// Insert two zero bits into `k` at positions `qa < qb`, producing a state
/// index whose bits at `qa` and `qb` are 0 and whose other bits enumerate `k`.
#[inline(always)]
fn spread2(k: usize, qa: Qubit, qb: Qubit) -> usize {
    debug_assert!(qa < qb);
    let low = k & ((1usize << qa) - 1);
    let mid = (k >> qa) & ((1usize << (qb - qa - 1)) - 1);
    let high = k >> (qb - 1);
    low | (mid << (qa + 1)) | (high << (qb + 1))
}

/// A `Sync` wrapper around the amplitude buffer for kernels whose write sets
/// are disjoint per work item but not expressible as slice chunks.
#[derive(Clone, Copy)]
struct SharedAmps {
    ptr: *mut Complex64,
    len: usize,
}

unsafe impl Sync for SharedAmps {}
unsafe impl Send for SharedAmps {}

impl SharedAmps {
    fn new(slice: &mut [Complex64]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// Caller must guarantee `idx < len` and that no other thread accesses
    /// `idx` concurrently.
    #[inline(always)]
    unsafe fn read(&self, idx: usize) -> Complex64 {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx)
    }

    /// # Safety
    /// Caller must guarantee `idx < len` and that no other thread accesses
    /// `idx` concurrently.
    #[inline(always)]
    unsafe fn write(&self, idx: usize, value: Complex64) {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::{generators, Circuit};

    const SEQ: ApplyOptions = ApplyOptions {
        parallel: false,
        parallel_threshold: usize::MAX,
    };
    const PAR: ApplyOptions = ApplyOptions {
        parallel: true,
        parallel_threshold: 1,
    };

    /// Reference: apply a gate through the dense embedded-unitary definition.
    fn apply_gate_reference(state: &StateVector, gate: &Gate) -> StateVector {
        let n = state.num_qubits();
        let dim = 1usize << n;
        let g = gate.matrix();
        let mut out = vec![Complex64::ZERO; dim];
        for col in 0..dim {
            let amp_in = state.amp(col);
            if amp_in == Complex64::ZERO {
                continue;
            }
            let mut sub_col = 0usize;
            for (j, &q) in gate.qubits.iter().enumerate() {
                sub_col |= ((col >> q) & 1) << j;
            }
            for sub_row in 0..g.dim() {
                let m = g.get(sub_row, sub_col);
                if m == Complex64::ZERO {
                    continue;
                }
                let mut row = col;
                for (j, &q) in gate.qubits.iter().enumerate() {
                    let bit = (sub_row >> j) & 1;
                    row = (row & !(1 << q)) | (bit << q);
                }
                out[row] += m * amp_in;
            }
        }
        StateVector::from_amplitudes(out)
    }

    fn random_state(n: usize, seed: u64) -> StateVector {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut amps: Vec<Complex64> = (0..1 << n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut amps {
            *a = a.scale(1.0 / norm);
        }
        StateVector::from_amplitudes(amps)
    }

    fn check_gate_against_reference(gate: Gate, n: usize) {
        let init = random_state(
            n,
            0xFEED + n as u64 + gate.qubits.iter().sum::<usize>() as u64,
        );
        let expected = apply_gate_reference(&init, &gate);
        for opts in [SEQ, PAR] {
            let mut got = init.clone();
            apply_gate_with(&mut got, &gate, &opts);
            assert!(
                got.approx_eq(&expected, 1e-10),
                "kernel mismatch for {} on {:?} (parallel={})",
                gate.kind.name(),
                gate.qubits,
                opts.parallel
            );
        }
    }

    #[test]
    fn hadamard_on_zero_state_gives_uniform_superposition() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let sv = run_circuit(&c);
        let expect = 1.0 / (8f64).sqrt();
        for i in 0..8 {
            assert!((sv.amp(i).re - expect).abs() < 1e-12);
            assert!(sv.amp(i).im.abs() < 1e-12);
        }
    }

    #[test]
    fn bell_state_amplitudes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = run_circuit(&c);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!((sv.amp(0).re - r).abs() < 1e-12);
        assert!((sv.amp(3).re - r).abs() < 1e-12);
        assert!(sv.amp(1).norm() < 1e-12);
        assert!(sv.amp(2).norm() < 1e-12);
    }

    #[test]
    fn every_gate_kind_matches_reference_on_random_state() {
        use GateKind::*;
        let single = [
            H,
            X,
            Y,
            Z,
            S,
            T,
            Sx,
            Rx(0.3),
            Ry(0.7),
            Rz(-1.1),
            P(0.4),
            U3(0.2, 0.5, 0.9),
        ];
        for kind in single {
            for q in [0usize, 2, 4] {
                check_gate_against_reference(Gate::new(kind, vec![q]), 5);
            }
        }
        let double = [
            Cx,
            Cy,
            Cz,
            Ch,
            Cp(0.8),
            Crz(1.3),
            Crx(0.6),
            Swap,
            Rzz(0.9),
            Rxx(0.5),
        ];
        for kind in double {
            for (a, b) in [(0usize, 1usize), (1, 4), (4, 2), (3, 0)] {
                check_gate_against_reference(Gate::new(kind, vec![a, b]), 5);
            }
        }
        for (c0, c1, t) in [(0usize, 1usize, 2usize), (4, 2, 0), (1, 3, 4)] {
            check_gate_against_reference(Gate::new(Ccx, vec![c0, c1, t]), 5);
            check_gate_against_reference(Gate::new(Cswap, vec![c0, c1, t]), 5);
        }
    }

    #[test]
    fn top_qubit_gate_uses_split_parallel_path() {
        // Gate on the highest qubit exercises the single-block branch.
        let gate = Gate::new(GateKind::H, vec![7]);
        check_gate_against_reference(gate, 8);
    }

    #[test]
    fn parallel_and_sequential_agree_on_whole_circuits() {
        for name in ["qft", "grover", "adder", "qaoa"] {
            let c = generators::by_name(name, 8);
            let seq = run_circuit_with(&c, &SEQ);
            let par = run_circuit_with(&c, &PAR);
            assert!(
                seq.approx_eq(&par, 1e-9),
                "{name}: parallel and sequential runs disagree"
            );
        }
    }

    #[test]
    fn circuit_followed_by_inverse_is_identity() {
        let c = generators::random_circuit(6, 60, 11);
        let mut sv = run_circuit(&c);
        apply_circuit(&mut sv, &c.inverse());
        let zero = StateVector::zero_state(6);
        assert!(sv.approx_eq(&zero, 1e-9));
    }

    #[test]
    fn unitarity_preserves_norm() {
        let c = generators::by_name("qpe", 9);
        let sv = run_circuit(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
        assert!(sv.is_finite());
    }

    #[test]
    fn spread2_produces_disjoint_groups() {
        let (qa, qb) = (1usize, 3usize);
        let mut seen = std::collections::HashSet::new();
        for k in 0..16 {
            let base = spread2(k, qa, qb);
            assert_eq!(base & (1 << qa), 0);
            assert_eq!(base & (1 << qb), 0);
            assert!(seen.insert(base), "duplicate base {base}");
        }
    }

    #[test]
    #[should_panic(expected = "gate touches qubit")]
    fn gate_outside_register_panics() {
        let mut sv = StateVector::zero_state(2);
        apply_gate(&mut sv, &Gate::new(GateKind::H, vec![5]));
    }
}

//! Gate-application kernels.
//!
//! The paper's Sec. III-A analysis: applying a gate is a sweep of "scoped"
//! small matrix–vector products over the state vector, with an operational
//! intensity of 7/16 FLOP/byte — firmly memory bound. The kernels here are
//! therefore organised around access pattern, not arithmetic:
//!
//! * single-qubit gates use a contiguous two-half block sweep (the pattern of
//!   Fig. 1), parallelised over blocks with rayon;
//! * diagonal gates use a pure streaming elementwise pass;
//! * controlled gates only touch the half of the state where the control bit
//!   is set;
//! * arbitrary k-qubit gates fall back to a gather/apply/scatter of 2^k
//!   amplitudes per index group, parallelised over groups.
//!
//! All parallel paths partition the amplitude indices into disjoint groups, so
//! they are data-race free by construction.
//!
//! Every kernel exists in two layers: a public `StateVector` entry point and
//! a `pub(crate)` `*_amps` core over a raw amplitude slice. The slice cores
//! are what the fused executor's cache-blocked sweep calls per tile (gate
//! qubits reinterpreted relative to the tile), and they are also where the
//! SIMD dispatch lives: when [`ApplyOptions::dispatch`] resolves to AVX2 the
//! hot loops run the vector twins in [`crate::simd`], which replay the
//! scalar op sequence bit-for-bit.

use crate::simd::KernelDispatch;
use crate::state::StateVector;
use hisvsim_circuit::{Complex64, Gate, GateKind, Qubit, UnitaryMatrix};
use rayon::prelude::*;

/// Controls how kernels execute.
#[derive(Debug, Clone, Copy)]
pub struct ApplyOptions {
    /// Use rayon data parallelism when the state is large enough.
    pub parallel: bool,
    /// Minimum number of amplitudes before the parallel path is taken;
    /// below this the sequential loop is faster than the fork/join overhead.
    pub parallel_threshold: usize,
    /// Which kernel implementation to run (SIMD when available vs forced
    /// scalar). Both produce bit-identical amplitudes.
    pub dispatch: KernelDispatch,
}

impl Default for ApplyOptions {
    fn default() -> Self {
        Self {
            parallel: true,
            parallel_threshold: 1 << 14,
            dispatch: KernelDispatch::Auto,
        }
    }
}

impl ApplyOptions {
    /// Fully sequential execution (used by the per-rank local engines, which
    /// already parallelise across ranks).
    pub fn sequential() -> Self {
        Self {
            parallel: false,
            parallel_threshold: usize::MAX,
            dispatch: KernelDispatch::Auto,
        }
    }

    /// Same options with an explicit kernel dispatch.
    pub fn with_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.dispatch = dispatch;
        self
    }

    #[inline]
    fn go_parallel(&self, len: usize) -> bool {
        self.parallel && len >= self.parallel_threshold
    }

    /// Whether this application runs the AVX2 kernels.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    #[inline]
    pub(crate) fn use_simd(&self) -> bool {
        self.dispatch.use_simd()
    }
}

/// Apply a gate to a state vector using the default options.
pub fn apply_gate(state: &mut StateVector, gate: &Gate) {
    apply_gate_with(state, gate, &ApplyOptions::default());
}

/// Apply a gate to a state vector with explicit execution options.
pub fn apply_gate_with(state: &mut StateVector, gate: &Gate, opts: &ApplyOptions) {
    apply_gate_with_matrix(state, gate, None, opts);
}

/// True when [`apply_gate_with`]'s dispatch consumes the gate's dense matrix
/// (as opposed to a matrix-free fast path like X/CX/CZ/SWAP). Callers that
/// apply the same gate many times (e.g. once per virtual rank) use this to
/// decide whether precomputing the matrix is worthwhile.
pub fn uses_dense_matrix(gate: &Gate) -> bool {
    !matches!(
        (&gate.kind, gate.qubits.len()),
        (GateKind::I, _)
            | (GateKind::X, 1)
            | (GateKind::Cx, 2)
            | (GateKind::Cz, 2)
            | (GateKind::Swap, 2)
    )
}

/// Apply a gate, optionally supplying its precomputed dense matrix so hot
/// loops (per-rank remapped copies, fused pipelines) do not recompute
/// `gate.matrix()` on every application. `matrix`, when given, must equal
/// `gate.kind.matrix()`; the gate's qubit list is still what selects the
/// state indices, so a remapped gate can share the original's matrix.
pub fn apply_gate_with_matrix(
    state: &mut StateVector,
    gate: &Gate,
    matrix: Option<&UnitaryMatrix>,
    opts: &ApplyOptions,
) {
    let n = state.num_qubits();
    for &q in &gate.qubits {
        assert!(q < n, "gate touches qubit {q} but the state has {n} qubits");
    }
    apply_gate_with_matrix_amps(state.amplitudes_mut(), gate, matrix, opts);
}

/// [`apply_gate_with_matrix`] over a raw amplitude slice — a whole state or
/// an aligned power-of-two tile of one, with gate qubit indices interpreted
/// relative to the slice. The fused executor's cache-blocked sweep relies on
/// this to run whole op-runs tile-by-tile.
pub(crate) fn apply_gate_with_matrix_amps(
    amps: &mut [Complex64],
    gate: &Gate,
    matrix: Option<&UnitaryMatrix>,
    opts: &ApplyOptions,
) {
    debug_assert!(gate.qubits.iter().all(|&q| 1usize << (q + 1) <= amps.len()));
    // Resolve the dense matrix once up front when this gate's dispatch arm
    // consumes one; matrix-free fast paths skip the computation entirely.
    let computed;
    let m: Option<&UnitaryMatrix> = if uses_dense_matrix(gate) {
        Some(match matrix {
            Some(m) => m,
            None => {
                computed = gate.kind.matrix();
                &computed
            }
        })
    } else {
        None
    };
    match (&gate.kind, gate.qubits.as_slice()) {
        (GateKind::I, _) => {}
        // Dedicated fast paths for the most common structures.
        (GateKind::X, &[q]) => apply_x_amps(amps, q, opts),
        (GateKind::Cx, &[c, t]) => apply_cx_amps(amps, c, t, opts),
        (GateKind::Cz, &[c, t]) => apply_cz_amps(amps, c, t, opts),
        (GateKind::Swap, &[a, b]) => apply_swap_amps(amps, a, b, opts),
        (kind, &[q]) if kind.is_diagonal() => {
            let m = m.expect("diagonal gate uses a matrix");
            apply_diagonal_single_amps(amps, q, m.get(0, 0), m.get(1, 1), opts);
        }
        (_, &[q]) => {
            let m = m.expect("dense single-qubit gate uses a matrix");
            let mat = [m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1)];
            apply_single_amps(amps, q, &mat, opts);
        }
        (kind, &[c, t]) if kind.num_controls() == 1 => {
            // Controlled single-qubit gate: apply the 2x2 block on the target
            // restricted to the control=1 half.
            let m = m.expect("controlled gate uses a matrix");
            let mat = [m.get(1, 1), m.get(1, 3), m.get(3, 1), m.get(3, 3)];
            apply_controlled_single_amps(amps, c, t, &mat, opts);
        }
        (kind, &[a, b]) if kind.is_diagonal() => {
            let m = m.expect("diagonal two-qubit gate uses a matrix");
            let diag = [m.get(0, 0), m.get(1, 1), m.get(2, 2), m.get(3, 3)];
            apply_diagonal_two_amps(amps, a, b, &diag, opts);
        }
        (_, &[a, b]) => {
            let m = m.expect("dense two-qubit gate uses a matrix");
            apply_two_qubit_dense_amps(amps, a, b, m, opts);
        }
        _ => {
            let m = m.expect("generic k-qubit gate uses a matrix");
            let sparse = SparseRows::build(m);
            apply_k_qubit_prepared_amps(amps, &gate.qubits, m, sparse.as_ref(), opts);
        }
    }
}

/// Apply every gate of a circuit to the state, in order.
pub fn apply_circuit(state: &mut StateVector, circuit: &hisvsim_circuit::Circuit) {
    apply_circuit_with(state, circuit, &ApplyOptions::default());
}

/// Apply every gate of a circuit with explicit execution options.
pub fn apply_circuit_with(
    state: &mut StateVector,
    circuit: &hisvsim_circuit::Circuit,
    opts: &ApplyOptions,
) {
    assert!(
        circuit.num_qubits() <= state.num_qubits(),
        "circuit needs {} qubits, state has {}",
        circuit.num_qubits(),
        state.num_qubits()
    );
    for gate in circuit.gates() {
        apply_gate_with(state, gate, opts);
    }
}

/// Run a circuit from `|0…0⟩` and return the resulting state.
///
/// This is the *flat* (non-hierarchical) reference simulator every other
/// engine in the workspace is validated against.
pub fn run_circuit(circuit: &hisvsim_circuit::Circuit) -> StateVector {
    run_circuit_with(circuit, &ApplyOptions::default())
}

/// Run a circuit from `|0…0⟩` with explicit options.
pub fn run_circuit_with(circuit: &hisvsim_circuit::Circuit, opts: &ApplyOptions) -> StateVector {
    let mut state = StateVector::zero_state(circuit.num_qubits());
    apply_circuit_with(&mut state, circuit, opts);
    state
}

// ---------------------------------------------------------------------------
// single-qubit kernels
// ---------------------------------------------------------------------------

/// Apply a dense 2×2 matrix `[m00, m01, m10, m11]` on qubit `q`.
pub fn apply_single(state: &mut StateVector, q: Qubit, m: &[Complex64; 4], opts: &ApplyOptions) {
    apply_single_amps(state.amplitudes_mut(), q, m, opts);
}

pub(crate) fn apply_single_amps(
    amps: &mut [Complex64],
    q: Qubit,
    m: &[Complex64; 4],
    opts: &ApplyOptions,
) {
    #[cfg(target_arch = "x86_64")]
    if opts.use_simd() {
        apply_single_avx2(amps, q, m, opts);
        return;
    }
    let len = amps.len();
    let half = 1usize << q;
    let block = half << 1;
    let m = *m;
    let work = move |chunk: &mut [Complex64]| {
        let (lo, hi) = chunk.split_at_mut(half);
        for j in 0..half {
            let a = lo[j];
            let b = hi[j];
            lo[j] = Complex64::ZERO.mul_add(m[0], a).mul_add(m[1], b);
            hi[j] = Complex64::ZERO.mul_add(m[2], a).mul_add(m[3], b);
        }
    };
    if opts.go_parallel(len) && len / block >= 2 {
        amps.par_chunks_mut(block).for_each(work);
    } else if opts.go_parallel(len) {
        // The gate acts on one of the top qubits: only one block exists, so
        // parallelise the inner loop instead.
        let (lo, hi) = amps.split_at_mut(half);
        lo.par_iter_mut().zip(hi.par_iter_mut()).for_each(|(a, b)| {
            let x = *a;
            let y = *b;
            *a = Complex64::ZERO.mul_add(m[0], x).mul_add(m[1], y);
            *b = Complex64::ZERO.mul_add(m[2], x).mul_add(m[3], y);
        });
    } else {
        amps.chunks_mut(block).for_each(work);
    }
}

/// AVX2 path of [`apply_single_amps`]: the same block decomposition, with the
/// inner pair loop vectorised (two amplitude pairs per iteration).
#[cfg(target_arch = "x86_64")]
fn apply_single_avx2(amps: &mut [Complex64], q: Qubit, m: &[Complex64; 4], opts: &ApplyOptions) {
    let len = amps.len();
    let half = 1usize << q;
    let block = half << 1;
    // Sub-chunk size for splitting a single large block across threads; any
    // even divisor works, bit-identity is per amplitude pair.
    const SUB: usize = 1 << 12;
    if q == 0 {
        // SAFETY (all arms): dispatch verified AVX2+FMA; power-of-two slice
        // lengths keep every chunk even.
        if opts.go_parallel(len) && len > SUB {
            amps.par_chunks_mut(SUB)
                .for_each(|c| unsafe { crate::simd::apply_single_q0(c, m) });
        } else {
            unsafe { crate::simd::apply_single_q0(amps, m) };
        }
        return;
    }
    if opts.go_parallel(len) && len / block >= 2 {
        amps.par_chunks_mut(block).for_each(|chunk| {
            let (lo, hi) = chunk.split_at_mut(half);
            unsafe { crate::simd::apply_single_pairs(lo, hi, m) };
        });
    } else if opts.go_parallel(len) {
        let (lo, hi) = amps.split_at_mut(half);
        let lo_ptr = SharedAmps::new(lo);
        let hi_ptr = SharedAmps::new(hi);
        let nsub = half.div_ceil(SUB);
        (0..nsub).into_par_iter().for_each(|s| {
            let start = s * SUB;
            let n = SUB.min(half - start);
            // SAFETY: sub-ranges are disjoint per index; dispatch verified
            // AVX2+FMA; power-of-two half keeps every sub-range even.
            unsafe {
                let l = std::slice::from_raw_parts_mut(lo_ptr.as_ptr().add(start), n);
                let h = std::slice::from_raw_parts_mut(hi_ptr.as_ptr().add(start), n);
                crate::simd::apply_single_pairs(l, h, m);
            }
        });
    } else {
        for chunk in amps.chunks_mut(block) {
            let (lo, hi) = chunk.split_at_mut(half);
            unsafe { crate::simd::apply_single_pairs(lo, hi, m) };
        }
    }
}

/// Apply a diagonal single-qubit gate `diag(d0, d1)` on qubit `q`.
pub fn apply_diagonal_single(
    state: &mut StateVector,
    q: Qubit,
    d0: Complex64,
    d1: Complex64,
    opts: &ApplyOptions,
) {
    apply_diagonal_single_amps(state.amplitudes_mut(), q, d0, d1, opts);
}

pub(crate) fn apply_diagonal_single_amps(
    amps: &mut [Complex64],
    q: Qubit,
    d0: Complex64,
    d1: Complex64,
    opts: &ApplyOptions,
) {
    let len = amps.len();
    let mask = 1usize << q;
    let update = move |(i, a): (usize, &mut Complex64)| {
        *a *= if i & mask == 0 { d0 } else { d1 };
    };
    if opts.go_parallel(len) {
        amps.par_iter_mut().enumerate().for_each(update);
    } else {
        amps.iter_mut().enumerate().for_each(update);
    }
}

/// Apply a Pauli-X on qubit `q` (pure swap of the two halves of every block).
pub fn apply_x(state: &mut StateVector, q: Qubit, opts: &ApplyOptions) {
    apply_x_amps(state.amplitudes_mut(), q, opts);
}

pub(crate) fn apply_x_amps(amps: &mut [Complex64], q: Qubit, opts: &ApplyOptions) {
    let len = amps.len();
    let half = 1usize << q;
    let block = half << 1;
    let work = move |chunk: &mut [Complex64]| {
        let (lo, hi) = chunk.split_at_mut(half);
        lo.swap_with_slice(hi);
    };
    if opts.go_parallel(len) && len / block >= 2 {
        amps.par_chunks_mut(block).for_each(work);
    } else {
        amps.chunks_mut(block).for_each(work);
    }
}

// ---------------------------------------------------------------------------
// controlled / two-qubit kernels
// ---------------------------------------------------------------------------

/// Apply a 2×2 matrix on `target`, conditioned on `control` being 1.
pub fn apply_controlled_single(
    state: &mut StateVector,
    control: Qubit,
    target: Qubit,
    m: &[Complex64; 4],
    opts: &ApplyOptions,
) {
    apply_controlled_single_amps(state.amplitudes_mut(), control, target, m, opts);
}

pub(crate) fn apply_controlled_single_amps(
    amps: &mut [Complex64],
    control: Qubit,
    target: Qubit,
    m: &[Complex64; 4],
    opts: &ApplyOptions,
) {
    let len = amps.len();
    let cmask = 1usize << control;
    let tmask = 1usize << target;
    let m = *m;
    let amps_ptr = SharedAmps::new(amps);
    let groups = len >> 2;
    let (qa, qb) = (control.min(target), control.max(target));
    let apply_group = move |k: usize| {
        // Spread the group index over all non-gate bit positions.
        let i_base = spread2(k, qa, qb);
        let i = i_base | cmask; // control bit set, target bit 0
        let j = i | tmask;
        // SAFETY: every (i, j) pair is unique across k values because the
        // gate-qubit bits are fixed and the remaining bits enumerate k.
        unsafe {
            let a = amps_ptr.read(i);
            let b = amps_ptr.read(j);
            amps_ptr.write(i, Complex64::ZERO.mul_add(m[0], a).mul_add(m[1], b));
            amps_ptr.write(j, Complex64::ZERO.mul_add(m[2], a).mul_add(m[3], b));
        }
    };
    if opts.go_parallel(len) {
        (0..groups).into_par_iter().for_each(apply_group);
    } else {
        (0..groups).for_each(apply_group);
    }
}

/// Apply a CNOT (control, target).
pub fn apply_cx(state: &mut StateVector, control: Qubit, target: Qubit, opts: &ApplyOptions) {
    apply_cx_amps(state.amplitudes_mut(), control, target, opts);
}

pub(crate) fn apply_cx_amps(
    amps: &mut [Complex64],
    control: Qubit,
    target: Qubit,
    opts: &ApplyOptions,
) {
    let x = GateKind::X.matrix();
    let m = [x.get(0, 0), x.get(0, 1), x.get(1, 0), x.get(1, 1)];
    apply_controlled_single_amps(amps, control, target, &m, opts);
}

/// Apply a CZ (symmetric): flip the sign of amplitudes where both bits are 1.
pub fn apply_cz(state: &mut StateVector, a: Qubit, b: Qubit, opts: &ApplyOptions) {
    apply_cz_amps(state.amplitudes_mut(), a, b, opts);
}

pub(crate) fn apply_cz_amps(amps: &mut [Complex64], a: Qubit, b: Qubit, opts: &ApplyOptions) {
    let len = amps.len();
    let mask = (1usize << a) | (1usize << b);
    let update = move |(i, amp): (usize, &mut Complex64)| {
        if i & mask == mask {
            *amp = -*amp;
        }
    };
    if opts.go_parallel(len) {
        amps.par_iter_mut().enumerate().for_each(update);
    } else {
        amps.iter_mut().enumerate().for_each(update);
    }
}

/// Apply a SWAP between qubits `a` and `b`.
pub fn apply_swap(state: &mut StateVector, a: Qubit, b: Qubit, opts: &ApplyOptions) {
    apply_swap_amps(state.amplitudes_mut(), a, b, opts);
}

pub(crate) fn apply_swap_amps(amps: &mut [Complex64], a: Qubit, b: Qubit, opts: &ApplyOptions) {
    let len = amps.len();
    let amask = 1usize << a;
    let bmask = 1usize << b;
    let amps_ptr = SharedAmps::new(amps);
    let groups = len >> 2;
    let (qa, qb) = (a.min(b), a.max(b));
    let apply_group = move |k: usize| {
        let base = spread2(k, qa, qb);
        let i = base | amask; // a=1, b=0
        let j = base | bmask; // a=0, b=1
                              // SAFETY: disjoint index groups (see apply_controlled_single).
        unsafe {
            let x = amps_ptr.read(i);
            let y = amps_ptr.read(j);
            amps_ptr.write(i, y);
            amps_ptr.write(j, x);
        }
    };
    if opts.go_parallel(len) {
        (0..groups).into_par_iter().for_each(apply_group);
    } else {
        (0..groups).for_each(apply_group);
    }
}

/// Apply a dense 4×4 unitary on qubits `(a, b)` where operand `a` is matrix
/// bit 0 and operand `b` is matrix bit 1 (the [`GateKind::matrix`]
/// convention). Indexes with [`spread2`] — the same closed-form bit spread
/// the swap/controlled kernels use — instead of the generic gather/scatter,
/// and keeps the 4-amplitude group on the stack.
pub fn apply_two_qubit_dense(
    state: &mut StateVector,
    a: Qubit,
    b: Qubit,
    matrix: &UnitaryMatrix,
    opts: &ApplyOptions,
) {
    apply_two_qubit_dense_amps(state.amplitudes_mut(), a, b, matrix, opts);
}

pub(crate) fn apply_two_qubit_dense_amps(
    amps: &mut [Complex64],
    a: Qubit,
    b: Qubit,
    matrix: &UnitaryMatrix,
    opts: &ApplyOptions,
) {
    assert_eq!(matrix.dim(), 4, "two-qubit kernel needs a 4x4 matrix");
    assert_ne!(a, b, "two-qubit gate operands must be distinct");
    let len = amps.len();
    let amask = 1usize << a;
    let bmask = 1usize << b;
    let amps_ptr = SharedAmps::new(amps);
    let groups = len >> 2;
    let (qa, qb) = (a.min(b), a.max(b));
    #[cfg(target_arch = "x86_64")]
    if opts.use_simd() {
        // SAFETY: dispatch verified AVX2+FMA; group index sets are disjoint.
        let tm = unsafe { crate::simd::TwoQubitMat::new(matrix) };
        let apply_group = move |k: usize| {
            let base = spread2(k, qa, qb);
            let idx = [base, base | amask, base | bmask, base | amask | bmask];
            unsafe { tm.apply_group(amps_ptr.as_ptr(), &idx) };
        };
        if opts.go_parallel(len) {
            (0..groups).into_par_iter().for_each(apply_group);
        } else {
            (0..groups).for_each(apply_group);
        }
        return;
    }
    let mut m = [Complex64::ZERO; 16];
    m.copy_from_slice(matrix.as_slice());
    let apply_group = move |k: usize| {
        let base = spread2(k, qa, qb);
        // Sub-index `sub` has bit 0 = qubit `a`, bit 1 = qubit `b`.
        let idx = [base, base | amask, base | bmask, base | amask | bmask];
        // SAFETY: disjoint index groups (see apply_controlled_single).
        unsafe {
            let local = [
                amps_ptr.read(idx[0]),
                amps_ptr.read(idx[1]),
                amps_ptr.read(idx[2]),
                amps_ptr.read(idx[3]),
            ];
            for row in 0..4 {
                let mut acc = Complex64::ZERO;
                for (col, &amp) in local.iter().enumerate() {
                    acc = acc.mul_add(m[row * 4 + col], amp);
                }
                amps_ptr.write(idx[row], acc);
            }
        }
    };
    if opts.go_parallel(len) {
        (0..groups).into_par_iter().for_each(apply_group);
    } else {
        (0..groups).for_each(apply_group);
    }
}

/// Apply a diagonal two-qubit gate `diag(d00, d01, d10, d11)` where the digit
/// order is (qubit `b`, qubit `a`) — i.e. `d01` multiplies states with a=1,
/// b=0, matching the operand-0-is-LSB matrix convention.
pub fn apply_diagonal_two(
    state: &mut StateVector,
    a: Qubit,
    b: Qubit,
    diag: &[Complex64; 4],
    opts: &ApplyOptions,
) {
    apply_diagonal_two_amps(state.amplitudes_mut(), a, b, diag, opts);
}

pub(crate) fn apply_diagonal_two_amps(
    amps: &mut [Complex64],
    a: Qubit,
    b: Qubit,
    diag: &[Complex64; 4],
    opts: &ApplyOptions,
) {
    let len = amps.len();
    let amask = 1usize << a;
    let bmask = 1usize << b;
    let diag = *diag;
    let update = move |(i, amp): (usize, &mut Complex64)| {
        let idx = ((i & amask != 0) as usize) | (((i & bmask != 0) as usize) << 1);
        *amp *= diag[idx];
    };
    if opts.go_parallel(len) {
        amps.par_iter_mut().enumerate().for_each(update);
    } else {
        amps.iter_mut().enumerate().for_each(update);
    }
}

// ---------------------------------------------------------------------------
// generic k-qubit kernel
// ---------------------------------------------------------------------------

/// Widest gate the stack-buffer kernel handles without heap allocation. Fused
/// groups are kept at or below this width, so the fused execution pipeline
/// never allocates inside the sweep.
pub const MAX_STACK_KERNEL_QUBITS: usize = 5;
pub(crate) const STACK_DIM: usize = 1 << MAX_STACK_KERNEL_QUBITS;

/// Groups per work item in the heap-fallback parallel path, so scratch
/// buffers are reused across many groups instead of reallocated per group.
const GROUPS_PER_CHUNK: usize = 64;

/// Insert zero bits at every (ascending) position in `sorted`, producing a
/// state index whose gate-qubit bits are 0 and whose other bits enumerate `g`.
#[inline(always)]
fn spread_sorted(g: usize, sorted: &[Qubit]) -> usize {
    let mut base = g;
    for &q in sorted {
        let low = base & ((1usize << q) - 1);
        base = ((base >> q) << (q + 1)) | low;
    }
    base
}

/// Build the sub-index offset table `offsets[sub] = Σ_{bit b set in sub}
/// 2^{qubits[b]}` so the group loop indexes with a single OR instead of
/// re-spreading bits per amplitude. Hoisted out of the group loop — computed
/// once per gate application.
#[inline]
fn sub_offset_table(qubits: &[Qubit], offsets: &mut [usize]) {
    offsets[0] = 0;
    for sub in 1..offsets.len() {
        let low_bit = sub.trailing_zeros() as usize;
        offsets[sub] = offsets[sub & (sub - 1)] | (1usize << qubits[low_bit]);
    }
}

/// Apply an arbitrary `k`-qubit unitary to the given (distinct) qubits.
///
/// Operand `qubits[j]` corresponds to bit `j` of the matrix index, matching
/// [`GateKind::matrix`]'s convention. The matrix is taken by reference and
/// never cloned; for `k ≤ 5` the per-group scratch lives on the stack, and
/// the heap fallback for wider gates reuses one scratch buffer per chunk of
/// groups rather than allocating per group.
pub fn apply_k_qubit(
    state: &mut StateVector,
    qubits: &[Qubit],
    matrix: &UnitaryMatrix,
    opts: &ApplyOptions,
) {
    let k = qubits.len();
    assert_eq!(matrix.dim(), 1 << k, "matrix dimension mismatch");
    let len = state.len();
    assert!(len >= 1 << k, "state too small for a {k}-qubit gate");
    let sparse = SparseRows::build(matrix);
    apply_k_qubit_prepared(state, qubits, matrix, sparse.as_ref(), opts);
}

/// [`apply_k_qubit`] with the sparse-row table supplied by the caller, so
/// fused pipelines that apply the same matrix once per gather assignment
/// build it once instead of per application. `sparse` must be
/// `SparseRows::build(matrix)`'s result (None means dense iteration).
pub(crate) fn apply_k_qubit_prepared(
    state: &mut StateVector,
    qubits: &[Qubit],
    matrix: &UnitaryMatrix,
    sparse: Option<&SparseRows>,
    opts: &ApplyOptions,
) {
    apply_k_qubit_prepared_amps(state.amplitudes_mut(), qubits, matrix, sparse, opts);
}

pub(crate) fn apply_k_qubit_prepared_amps(
    amps: &mut [Complex64],
    qubits: &[Qubit],
    matrix: &UnitaryMatrix,
    sparse: Option<&SparseRows>,
    opts: &ApplyOptions,
) {
    let k = qubits.len();
    assert_eq!(matrix.dim(), 1 << k, "matrix dimension mismatch");
    let len = amps.len();
    assert!(len >= 1 << k, "state too small for a {k}-qubit gate");
    if k <= MAX_STACK_KERNEL_QUBITS {
        apply_k_qubit_stack(amps, qubits, matrix, sparse, opts);
    } else {
        apply_k_qubit_heap(amps, qubits, matrix, sparse, opts);
    }
}

/// Compressed sparse rows of a gate matrix, built once per application
/// (outside the group loop). Fused group matrices are usually far from
/// dense — controlled factors and permutation structure leave most entries
/// zero — so skipping zeros cuts the per-amplitude arithmetic directly.
#[derive(Debug, Clone)]
pub(crate) struct SparseRows {
    row_ptr: Vec<u32>,
    entries: Vec<(u32, Complex64)>,
}

impl SparseRows {
    /// Build when the fill ratio makes sparse iteration worthwhile (below
    /// 3/4); a near-dense matrix iterates faster as a contiguous slice.
    pub(crate) fn build(matrix: &UnitaryMatrix) -> Option<Self> {
        let dim = matrix.dim();
        let rows = matrix.as_slice();
        let nnz = rows.iter().filter(|v| **v != Complex64::ZERO).count();
        if nnz * 4 > dim * dim * 3 {
            return None;
        }
        let mut row_ptr = Vec::with_capacity(dim + 1);
        let mut entries = Vec::with_capacity(nnz);
        row_ptr.push(0u32);
        for row in 0..dim {
            for col in 0..dim {
                let v = rows[row * dim + col];
                if v != Complex64::ZERO {
                    entries.push((col as u32, v));
                }
            }
            row_ptr.push(entries.len() as u32);
        }
        Some(Self { row_ptr, entries })
    }

    #[inline(always)]
    pub(crate) fn row(&self, row: usize) -> &[(u32, Complex64)] {
        &self.entries[self.row_ptr[row] as usize..self.row_ptr[row + 1] as usize]
    }
}

/// The allocation-free `k ≤ 5` kernel: stack scratch, hoisted offset table,
/// sparse-row iteration when the matrix has enough zeros, contiguous dense
/// rows otherwise. The AVX2 path processes two amplitude groups per work
/// item (group `2p` in lane pair 0, group `2p+1` in lane pair 1).
fn apply_k_qubit_stack(
    amps: &mut [Complex64],
    qubits: &[Qubit],
    matrix: &UnitaryMatrix,
    sparse: Option<&SparseRows>,
    opts: &ApplyOptions,
) {
    let k = qubits.len();
    let dim = 1usize << k;
    let len = amps.len();
    let groups = len >> k;

    let mut sorted: [Qubit; MAX_STACK_KERNEL_QUBITS] = [0; MAX_STACK_KERNEL_QUBITS];
    sorted[..k].copy_from_slice(qubits);
    sorted[..k].sort_unstable();

    let mut offsets = [0usize; STACK_DIM];
    sub_offset_table(qubits, &mut offsets[..dim]);

    let amps_ptr = SharedAmps::new(amps);
    let rows = matrix.as_slice();
    // `groups` is a power of two, so `groups >= 2` guarantees the pair loop
    // covers every group with no tail.
    #[cfg(target_arch = "x86_64")]
    if opts.use_simd() && groups >= 2 {
        let pairs = groups / 2;
        let apply_pair = move |p: usize| {
            let g = p * 2;
            let base_a = spread_sorted(g, &sorted[..k]);
            let base_b = spread_sorted(g + 1, &sorted[..k]);
            // SAFETY: dispatch verified AVX2+FMA; the two groups of a pair
            // are disjoint from each other and from every other pair.
            unsafe {
                crate::simd::apply_k_group_pair(
                    amps_ptr.as_ptr(),
                    base_a,
                    base_b,
                    &offsets[..dim],
                    rows,
                    sparse,
                );
            }
        };
        if opts.go_parallel(len) {
            (0..pairs).into_par_iter().for_each(apply_pair);
        } else {
            (0..pairs).for_each(apply_pair);
        }
        return;
    }
    let apply_group = |g: usize| {
        let base = spread_sorted(g, &sorted[..k]);
        let mut local = [Complex64::ZERO; STACK_DIM];
        for (sub, slot) in local[..dim].iter_mut().enumerate() {
            // SAFETY: groups are disjoint — all gate-qubit bits are fixed per
            // sub-index and the base enumerates the remaining bits uniquely.
            *slot = unsafe { amps_ptr.read(base | offsets[sub]) };
        }
        match sparse {
            Some(sparse) => {
                for (row, &off) in offsets[..dim].iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for &(col, v) in sparse.row(row) {
                        acc = acc.mul_add(v, local[col as usize]);
                    }
                    unsafe { amps_ptr.write(base | off, acc) };
                }
            }
            None => {
                for row in 0..dim {
                    let mut acc = Complex64::ZERO;
                    for (col, &amp) in local[..dim].iter().enumerate() {
                        acc = acc.mul_add(rows[row * dim + col], amp);
                    }
                    unsafe { amps_ptr.write(base | offsets[row], acc) };
                }
            }
        }
    };
    if opts.go_parallel(len) {
        (0..groups).into_par_iter().for_each(apply_group);
    } else {
        (0..groups).for_each(apply_group);
    }
}

/// Heap fallback for `k > 5`: one scratch buffer per chunk of groups (and per
/// gate application in the sequential path), never one per group.
fn apply_k_qubit_heap(
    amps: &mut [Complex64],
    qubits: &[Qubit],
    matrix: &UnitaryMatrix,
    sparse: Option<&SparseRows>,
    opts: &ApplyOptions,
) {
    let k = qubits.len();
    let dim = 1usize << k;
    let len = amps.len();
    let groups = len >> k;

    let mut sorted: Vec<Qubit> = qubits.to_vec();
    sorted.sort_unstable();
    let mut offsets = vec![0usize; dim];
    sub_offset_table(qubits, &mut offsets);
    let sorted = &sorted;
    let offsets = &offsets;

    let amps_ptr = SharedAmps::new(amps);
    let rows = matrix.as_slice();
    let run_chunk = |first: usize, last: usize| {
        let mut local = vec![Complex64::ZERO; dim];
        for g in first..last {
            let base = spread_sorted(g, sorted);
            for (sub, slot) in local.iter_mut().enumerate() {
                // SAFETY: disjoint groups (see the stack kernel).
                *slot = unsafe { amps_ptr.read(base | offsets[sub]) };
            }
            match sparse {
                Some(sparse) => {
                    for (row, &off) in offsets.iter().enumerate() {
                        let mut acc = Complex64::ZERO;
                        for &(col, v) in sparse.row(row) {
                            acc = acc.mul_add(v, local[col as usize]);
                        }
                        unsafe { amps_ptr.write(base | off, acc) };
                    }
                }
                None => {
                    for row in 0..dim {
                        let mut acc = Complex64::ZERO;
                        for (col, &amp) in local.iter().enumerate() {
                            acc = acc.mul_add(rows[row * dim + col], amp);
                        }
                        unsafe { amps_ptr.write(base | offsets[row], acc) };
                    }
                }
            }
        }
    };
    if opts.go_parallel(len) {
        let chunks = groups.div_ceil(GROUPS_PER_CHUNK);
        (0..chunks).into_par_iter().for_each(|c| {
            let first = c * GROUPS_PER_CHUNK;
            run_chunk(first, (first + GROUPS_PER_CHUNK).min(groups));
        });
    } else {
        run_chunk(0, groups);
    }
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// Insert two zero bits into `k` at positions `qa < qb`, producing a state
/// index whose bits at `qa` and `qb` are 0 and whose other bits enumerate `k`.
#[inline(always)]
fn spread2(k: usize, qa: Qubit, qb: Qubit) -> usize {
    debug_assert!(qa < qb);
    let low = k & ((1usize << qa) - 1);
    let mid = (k >> qa) & ((1usize << (qb - qa - 1)) - 1);
    let high = k >> (qb - 1);
    low | (mid << (qa + 1)) | (high << (qb + 1))
}

/// A `Sync` wrapper around the amplitude buffer for kernels whose write sets
/// are disjoint per work item but not expressible as slice chunks.
#[derive(Clone, Copy)]
struct SharedAmps {
    ptr: *mut Complex64,
    len: usize,
}

unsafe impl Sync for SharedAmps {}
unsafe impl Send for SharedAmps {}

impl SharedAmps {
    fn new(slice: &mut [Complex64]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Raw base pointer. Going through a method (rather than the field) keeps
    /// closures capturing the whole `Sync` wrapper, not the bare pointer.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    #[inline(always)]
    fn as_ptr(&self) -> *mut Complex64 {
        self.ptr
    }

    /// # Safety
    /// Caller must guarantee `idx < len` and that no other thread accesses
    /// `idx` concurrently.
    #[inline(always)]
    unsafe fn read(&self, idx: usize) -> Complex64 {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx)
    }

    /// # Safety
    /// Caller must guarantee `idx < len` and that no other thread accesses
    /// `idx` concurrently.
    #[inline(always)]
    unsafe fn write(&self, idx: usize, value: Complex64) {
        debug_assert!(idx < self.len);
        *self.ptr.add(idx) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::{generators, Circuit};

    const SEQ: ApplyOptions = ApplyOptions {
        parallel: false,
        parallel_threshold: usize::MAX,
        dispatch: KernelDispatch::Auto,
    };
    const PAR: ApplyOptions = ApplyOptions {
        parallel: true,
        parallel_threshold: 1,
        dispatch: KernelDispatch::Auto,
    };

    /// Reference: apply a gate through the dense embedded-unitary definition.
    fn apply_gate_reference(state: &StateVector, gate: &Gate) -> StateVector {
        let n = state.num_qubits();
        let dim = 1usize << n;
        let g = gate.matrix();
        let mut out = vec![Complex64::ZERO; dim];
        for col in 0..dim {
            let amp_in = state.amp(col);
            if amp_in == Complex64::ZERO {
                continue;
            }
            let mut sub_col = 0usize;
            for (j, &q) in gate.qubits.iter().enumerate() {
                sub_col |= ((col >> q) & 1) << j;
            }
            for sub_row in 0..g.dim() {
                let m = g.get(sub_row, sub_col);
                if m == Complex64::ZERO {
                    continue;
                }
                let mut row = col;
                for (j, &q) in gate.qubits.iter().enumerate() {
                    let bit = (sub_row >> j) & 1;
                    row = (row & !(1 << q)) | (bit << q);
                }
                out[row] += m * amp_in;
            }
        }
        StateVector::from_amplitudes(out)
    }

    fn random_state(n: usize, seed: u64) -> StateVector {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut amps: Vec<Complex64> = (0..1 << n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        for a in &mut amps {
            *a = a.scale(1.0 / norm);
        }
        StateVector::from_amplitudes(amps)
    }

    fn check_gate_against_reference(gate: Gate, n: usize) {
        let init = random_state(
            n,
            0xFEED + n as u64 + gate.qubits.iter().sum::<usize>() as u64,
        );
        let expected = apply_gate_reference(&init, &gate);
        for opts in [SEQ, PAR] {
            let mut got = init.clone();
            apply_gate_with(&mut got, &gate, &opts);
            assert!(
                got.approx_eq(&expected, 1e-10),
                "kernel mismatch for {} on {:?} (parallel={})",
                gate.kind.name(),
                gate.qubits,
                opts.parallel
            );
            // Forced-scalar dispatch must agree with Auto bit-for-bit: the
            // SIMD kernels replay the scalar IEEE op sequence exactly.
            let mut scalar = init.clone();
            apply_gate_with(
                &mut scalar,
                &gate,
                &opts.with_dispatch(KernelDispatch::Scalar),
            );
            for i in 0..scalar.len() {
                let (s, g) = (scalar.amp(i), got.amp(i));
                assert!(
                    s.re.to_bits() == g.re.to_bits() && s.im.to_bits() == g.im.to_bits(),
                    "dispatch divergence for {} on {:?} at amp {i}: scalar {s:?} vs auto {g:?}",
                    gate.kind.name(),
                    gate.qubits
                );
            }
        }
    }

    #[test]
    fn hadamard_on_zero_state_gives_uniform_superposition() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let sv = run_circuit(&c);
        let expect = 1.0 / (8f64).sqrt();
        for i in 0..8 {
            assert!((sv.amp(i).re - expect).abs() < 1e-12);
            assert!(sv.amp(i).im.abs() < 1e-12);
        }
    }

    #[test]
    fn bell_state_amplitudes() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = run_circuit(&c);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!((sv.amp(0).re - r).abs() < 1e-12);
        assert!((sv.amp(3).re - r).abs() < 1e-12);
        assert!(sv.amp(1).norm() < 1e-12);
        assert!(sv.amp(2).norm() < 1e-12);
    }

    #[test]
    fn every_gate_kind_matches_reference_on_random_state() {
        use GateKind::*;
        let single = [
            H,
            X,
            Y,
            Z,
            S,
            T,
            Sx,
            Rx(0.3),
            Ry(0.7),
            Rz(-1.1),
            P(0.4),
            U3(0.2, 0.5, 0.9),
        ];
        for kind in single {
            for q in [0usize, 2, 4] {
                check_gate_against_reference(Gate::new(kind, vec![q]), 5);
            }
        }
        let double = [
            Cx,
            Cy,
            Cz,
            Ch,
            Cp(0.8),
            Crz(1.3),
            Crx(0.6),
            Swap,
            Rzz(0.9),
            Rxx(0.5),
        ];
        for kind in double {
            for (a, b) in [(0usize, 1usize), (1, 4), (4, 2), (3, 0)] {
                check_gate_against_reference(Gate::new(kind, vec![a, b]), 5);
            }
        }
        for (c0, c1, t) in [(0usize, 1usize, 2usize), (4, 2, 0), (1, 3, 4)] {
            check_gate_against_reference(Gate::new(Ccx, vec![c0, c1, t]), 5);
            check_gate_against_reference(Gate::new(Cswap, vec![c0, c1, t]), 5);
        }
    }

    #[test]
    fn top_qubit_gate_uses_split_parallel_path() {
        // Gate on the highest qubit exercises the single-block branch.
        let gate = Gate::new(GateKind::H, vec![7]);
        check_gate_against_reference(gate, 8);
    }

    #[test]
    fn scalar_and_auto_dispatch_agree_bitwise_on_whole_circuits() {
        for name in ["qft", "grover", "adder", "qaoa"] {
            let c = generators::by_name(name, 9);
            let auto = run_circuit_with(&c, &SEQ);
            let scalar = run_circuit_with(&c, &SEQ.with_dispatch(KernelDispatch::Scalar));
            assert_eq!(
                auto, scalar,
                "{name}: auto and forced-scalar dispatch diverged"
            );
            let auto_par = run_circuit_with(&c, &PAR);
            let scalar_par = run_circuit_with(&c, &PAR.with_dispatch(KernelDispatch::Scalar));
            assert_eq!(
                auto_par, scalar_par,
                "{name}: parallel auto and forced-scalar dispatch diverged"
            );
        }
    }

    #[test]
    fn parallel_and_sequential_agree_on_whole_circuits() {
        for name in ["qft", "grover", "adder", "qaoa"] {
            let c = generators::by_name(name, 8);
            let seq = run_circuit_with(&c, &SEQ);
            let par = run_circuit_with(&c, &PAR);
            assert!(
                seq.approx_eq(&par, 1e-9),
                "{name}: parallel and sequential runs disagree"
            );
        }
    }

    #[test]
    fn circuit_followed_by_inverse_is_identity() {
        let c = generators::random_circuit(6, 60, 11);
        let mut sv = run_circuit(&c);
        apply_circuit(&mut sv, &c.inverse());
        let zero = StateVector::zero_state(6);
        assert!(sv.approx_eq(&zero, 1e-9));
    }

    #[test]
    fn unitarity_preserves_norm() {
        let c = generators::by_name("qpe", 9);
        let sv = run_circuit(&c);
        assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
        assert!(sv.is_finite());
    }

    #[test]
    fn spread2_produces_disjoint_groups() {
        let (qa, qb) = (1usize, 3usize);
        let mut seen = std::collections::HashSet::new();
        for k in 0..16 {
            let base = spread2(k, qa, qb);
            assert_eq!(base & (1 << qa), 0);
            assert_eq!(base & (1 << qb), 0);
            assert!(seen.insert(base), "duplicate base {base}");
        }
    }

    #[test]
    #[should_panic(expected = "gate touches qubit")]
    fn gate_outside_register_panics() {
        let mut sv = StateVector::zero_state(2);
        apply_gate(&mut sv, &Gate::new(GateKind::H, vec![5]));
    }
}

//! # hisvsim-statevec
//!
//! Dense state-vector simulation kernels for HiSVSIM-RS.
//!
//! This crate provides the *computation* half of the paper's simulator:
//!
//! * [`state`] — the [`StateVector`] container (2^n complex amplitudes),
//! * [`kernels`] — gate application (specialised single-qubit, controlled,
//!   diagonal, swap and generic k-qubit kernels; sequential and rayon-parallel
//!   paths) plus the flat reference simulator [`kernels::run_circuit`],
//! * [`gather`] — the Gather/Scatter index machinery between outer and inner
//!   state vectors (paper Algorithm 1),
//! * [`fusion`] — greedy gate fusion into small dense unitaries (the
//!   kernel-level optimisation the paper calls orthogonal to its partitioning),
//! * [`measure`] — probabilities, sampling and expectation values,
//! * [`interrupt`] — the cooperative [`CancelToken`] the engines poll so a
//!   long sweep can be abandoned between checkpoints,
//! * [`simd`] — runtime-dispatched AVX2+FMA kernels with a bit-identical
//!   scalar fallback, selected per sweep via [`KernelDispatch`].
//!
//! The hierarchical, distributed and multi-level engines live in
//! `hisvsim-core` and are built entirely from these primitives.
//!
//! ## Example
//!
//! ```
//! use hisvsim_circuit::Circuit;
//! use hisvsim_statevec::prelude::*;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! let state = run_circuit(&bell);
//! assert!((state.probability(0b00) - 0.5).abs() < 1e-12);
//! assert!((state.probability(0b11) - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod fusion;
pub mod gather;
pub mod interrupt;
pub mod kernels;
pub mod measure;
pub mod simd;
pub mod state;

pub use fusion::{FusedCircuit, FusedOp, FusionStrategy, SweepCosts, DEFAULT_FUSION_WIDTH};
pub use gather::GatherMap;
pub use interrupt::{CancelToken, Cancelled};
pub use kernels::{apply_circuit, apply_gate, run_circuit, ApplyOptions};
pub use simd::{simd_available, KernelDispatch};
pub use state::{amplitudes_from_le_bytes, amplitudes_to_le_bytes, StateVector};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::fusion::{FusedCircuit, FusedOp, FusionStrategy, DEFAULT_FUSION_WIDTH};
    pub use crate::gather::GatherMap;
    pub use crate::kernels::{
        apply_circuit, apply_circuit_with, apply_gate, apply_gate_with, apply_gate_with_matrix,
        run_circuit, run_circuit_with, ApplyOptions,
    };
    pub use crate::measure;
    pub use crate::simd::{simd_available, KernelDispatch};
    pub use crate::state::StateVector;
}

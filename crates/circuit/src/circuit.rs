//! The quantum circuit intermediate representation: an ordered list of gates
//! over a fixed-width qubit register, plus a fluent builder API.

use crate::gate::{Gate, GateKind, Qubit};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A quantum circuit: `num_qubits` qubits and an ordered gate sequence.
///
/// The gate order is the *natural topological order* used by the `Nat`
/// partitioning strategy and is the order a flat simulator applies gates in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    /// A short name identifying the circuit (e.g. the benchmark family).
    pub name: String,
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Create an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            name: String::from("circuit"),
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Create an empty named circuit.
    pub fn named(name: impl Into<String>, num_qubits: usize) -> Self {
        Self {
            name: name.into(),
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of gates.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// True when the circuit contains no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gate sequence in execution order.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Consume the circuit and return its gates.
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }

    /// Append an already-constructed gate, validating its qubit indices.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for &q in &gate.qubits {
            assert!(
                q < self.num_qubits,
                "gate {} references qubit {} but the circuit has {} qubits",
                gate.kind.name(),
                q,
                self.num_qubits
            );
        }
        self.gates.push(gate);
        self
    }

    /// Append a gate by kind and operands.
    pub fn add(&mut self, kind: GateKind, qubits: &[Qubit]) -> &mut Self {
        self.push(Gate::new(kind, qubits.to_vec()))
    }

    /// Append all gates of `other` (which must act on no more qubits than
    /// this circuit has).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(other.num_qubits <= self.num_qubits);
        for g in other.gates() {
            self.push(g.clone());
        }
        self
    }

    // ---- fluent single-gate builders -------------------------------------

    /// Apply a Hadamard gate.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.add(GateKind::H, &[q])
    }
    /// Apply a Pauli-X gate.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.add(GateKind::X, &[q])
    }
    /// Apply a Pauli-Y gate.
    pub fn y(&mut self, q: Qubit) -> &mut Self {
        self.add(GateKind::Y, &[q])
    }
    /// Apply a Pauli-Z gate.
    pub fn z(&mut self, q: Qubit) -> &mut Self {
        self.add(GateKind::Z, &[q])
    }
    /// Apply an S gate.
    pub fn s(&mut self, q: Qubit) -> &mut Self {
        self.add(GateKind::S, &[q])
    }
    /// Apply an S-dagger gate.
    pub fn sdg(&mut self, q: Qubit) -> &mut Self {
        self.add(GateKind::Sdg, &[q])
    }
    /// Apply a T gate.
    pub fn t(&mut self, q: Qubit) -> &mut Self {
        self.add(GateKind::T, &[q])
    }
    /// Apply a T-dagger gate.
    pub fn tdg(&mut self, q: Qubit) -> &mut Self {
        self.add(GateKind::Tdg, &[q])
    }
    /// Apply an X rotation.
    pub fn rx(&mut self, theta: f64, q: Qubit) -> &mut Self {
        self.add(GateKind::Rx(theta), &[q])
    }
    /// Apply a Y rotation.
    pub fn ry(&mut self, theta: f64, q: Qubit) -> &mut Self {
        self.add(GateKind::Ry(theta), &[q])
    }
    /// Apply a Z rotation.
    pub fn rz(&mut self, theta: f64, q: Qubit) -> &mut Self {
        self.add(GateKind::Rz(theta), &[q])
    }
    /// Apply a phase gate.
    pub fn p(&mut self, lambda: f64, q: Qubit) -> &mut Self {
        self.add(GateKind::P(lambda), &[q])
    }
    /// Apply the general single-qubit u3 gate.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: Qubit) -> &mut Self {
        self.add(GateKind::U3(theta, phi, lambda), &[q])
    }
    /// Apply a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.add(GateKind::Cx, &[control, target])
    }
    /// Apply a controlled-Z.
    pub fn cz(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.add(GateKind::Cz, &[control, target])
    }
    /// Apply a controlled phase gate.
    pub fn cp(&mut self, lambda: f64, control: Qubit, target: Qubit) -> &mut Self {
        self.add(GateKind::Cp(lambda), &[control, target])
    }
    /// Apply a controlled Z-rotation.
    pub fn crz(&mut self, theta: f64, control: Qubit, target: Qubit) -> &mut Self {
        self.add(GateKind::Crz(theta), &[control, target])
    }
    /// Apply a ZZ interaction.
    pub fn rzz(&mut self, theta: f64, a: Qubit, b: Qubit) -> &mut Self {
        self.add(GateKind::Rzz(theta), &[a, b])
    }
    /// Apply a SWAP.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.add(GateKind::Swap, &[a, b])
    }
    /// Apply a Toffoli gate with controls `c0`, `c1` and target `t`.
    pub fn ccx(&mut self, c0: Qubit, c1: Qubit, t: Qubit) -> &mut Self {
        self.add(GateKind::Ccx, &[c0, c1, t])
    }

    // ---- analysis ---------------------------------------------------------

    /// The set of qubits actually touched by at least one gate.
    pub fn used_qubits(&self) -> BTreeSet<Qubit> {
        self.gates
            .iter()
            .flat_map(|g| g.qubits.iter().copied())
            .collect()
    }

    /// Count of two-or-more-qubit gates (the entangling gates).
    pub fn multi_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.arity() > 1).count()
    }

    /// Circuit depth: length of the longest chain of gates that share qubits.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for g in &self.gates {
            let l = g.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &g.qubits {
                level[q] = l;
            }
            depth = depth.max(l);
        }
        depth
    }

    /// Memory (bytes) the full state vector of this circuit requires:
    /// `2^n × 16`.
    pub fn state_vector_bytes(&self) -> u128 {
        16u128 << self.num_qubits
    }

    /// Build the inverse circuit (gates reversed and individually inverted).
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::named(format!("{}_inv", self.name), self.num_qubits);
        for g in self.gates.iter().rev() {
            inv.push(g.inverse());
        }
        inv
    }

    /// Produce a new circuit containing only the given gate indices, in the
    /// order given. Used to materialise a part of a partitioned circuit.
    pub fn subcircuit(&self, gate_indices: &[usize]) -> Circuit {
        let mut sub = Circuit::named(format!("{}_sub", self.name), self.num_qubits);
        for &i in gate_indices {
            sub.push(self.gates[i].clone());
        }
        sub
    }

    /// Remap every gate's qubits through `map[old] = Some(new)` and shrink the
    /// register to `new_width` qubits.
    pub fn remap_qubits(&self, map: &[Option<Qubit>], new_width: usize) -> Circuit {
        let mut out = Circuit::named(self.name.clone(), new_width);
        for g in &self.gates {
            out.push(g.remap(map));
        }
        out
    }

    /// A 64-bit *structural* fingerprint of the circuit: two circuits get the
    /// same fingerprint iff they have the same width and the same gate
    /// sequence (kinds, parameters bit-for-bit, and operand qubits).
    ///
    /// The circuit's [`name`](Circuit::name) is deliberately excluded, so
    /// templated workloads (the same circuit submitted under different job
    /// labels) share one fingerprint. This is the cache key the runtime's
    /// partition-plan cache is built on: everything the partitioners read —
    /// the DAG and the per-gate working sets — is a pure function of the
    /// fingerprinted structure.
    ///
    /// The hash is FNV-1a with a 64-bit fold of each component; collisions
    /// are possible in principle (any 64-bit hash has them) but negligibly
    /// likely across a plan cache's lifetime.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        #[inline]
        fn mix(h: u64, word: u64) -> u64 {
            let mut h = h;
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        let mut h = mix(OFFSET, self.num_qubits as u64);
        h = mix(h, self.gates.len() as u64);
        for g in &self.gates {
            // The kind name discriminates every `GateKind` variant; the
            // parameter list pins the rotation angles bit-exactly.
            for byte in g.kind.name().bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(PRIME);
            }
            for p in g.kind.params() {
                h = mix(h, p.to_bits());
            }
            for &q in &g.qubits {
                h = mix(h, q as u64);
            }
        }
        h
    }

    /// Per-gate-kind histogram, useful for reporting benchmark composition.
    pub fn gate_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for g in &self.gates {
            *counts.entry(g.kind.name().to_string()).or_default() += 1;
        }
        counts.into_iter().collect()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} qubits, {} gates, depth {}",
            self.name,
            self.num_qubits,
            self.num_gates(),
            self.depth()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.5, 2);
        assert_eq!(c.num_gates(), 4);
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.multi_qubit_gate_count(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn depth_follows_longest_dependency_chain() {
        let mut c = Circuit::new(3);
        // Parallel H's: depth 1.
        c.h(0).h(1).h(2);
        assert_eq!(c.depth(), 1);
        // Chain of CX: each adds one level.
        c.cx(0, 1).cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn used_qubits_ignores_untouched_wires() {
        let mut c = Circuit::new(5);
        c.h(1).cx(1, 3);
        let used: Vec<_> = c.used_qubits().into_iter().collect();
        assert_eq!(used, vec![1, 3]);
    }

    #[test]
    fn state_vector_bytes_matches_paper_table1() {
        // Table I: 30 qubits = 16 GB, 35 = 512 GB, 36 = 1 TB, 37 = 2 TB.
        assert_eq!(Circuit::new(30).state_vector_bytes(), 16 << 30);
        assert_eq!(Circuit::new(35).state_vector_bytes(), 512 << 30);
        assert_eq!(Circuit::new(36).state_vector_bytes(), 1 << 40);
        assert_eq!(Circuit::new(37).state_vector_bytes(), 2 << 40);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.num_gates(), 3);
        assert_eq!(inv.gates()[0].kind, GateKind::Cx);
        assert_eq!(inv.gates()[2].kind, GateKind::H);
        assert_eq!(inv.gates()[1].kind, GateKind::Sdg);
    }

    #[test]
    fn subcircuit_selects_in_given_order() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).cx(0, 1);
        let sub = c.subcircuit(&[2, 0]);
        assert_eq!(sub.num_gates(), 2);
        assert_eq!(sub.gates()[0].kind, GateKind::Cx);
        assert_eq!(sub.gates()[1].kind, GateKind::H);
    }

    #[test]
    fn remap_qubits_shrinks_register() {
        let mut c = Circuit::new(8);
        c.cx(6, 2).h(6);
        let mut map = vec![None; 8];
        map[6] = Some(0);
        map[2] = Some(1);
        let r = c.remap_qubits(&map, 2);
        assert_eq!(r.num_qubits(), 2);
        assert_eq!(r.gates()[0].qubits, vec![0, 1]);
        assert_eq!(r.gates()[1].qubits, vec![0]);
    }

    #[test]
    fn fingerprint_is_structural_and_name_blind() {
        let mut a = Circuit::named("first", 3);
        a.h(0).cx(0, 1).rz(0.25, 2);
        let mut b = Circuit::named("second", 3);
        b.h(0).cx(0, 1).rz(0.25, 2);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "name must not affect the fingerprint"
        );

        // Any structural change must change the fingerprint.
        let mut wider = Circuit::new(4);
        wider.h(0).cx(0, 1).rz(0.25, 2);
        assert_ne!(a.fingerprint(), wider.fingerprint());

        let mut other_angle = Circuit::new(3);
        other_angle.h(0).cx(0, 1).rz(0.26, 2);
        assert_ne!(a.fingerprint(), other_angle.fingerprint());

        let mut other_qubit = Circuit::new(3);
        other_qubit.h(0).cx(1, 0).rz(0.25, 2);
        assert_ne!(a.fingerprint(), other_qubit.fingerprint());

        let mut shorter = Circuit::new(3);
        shorter.h(0).cx(0, 1);
        assert_ne!(a.fingerprint(), shorter.fingerprint());
    }

    #[test]
    fn fingerprint_is_stable_across_clones_and_roundtrips() {
        let c = crate::generators::qft(8);
        assert_eq!(c.fingerprint(), c.clone().fingerprint());
        // Gate-kind pairs that stringify identically must still hash apart.
        let mut x = Circuit::new(2);
        x.p(0.5, 0);
        let mut y = Circuit::new(2);
        y.rz(0.5, 0);
        assert_ne!(x.fingerprint(), y.fingerprint());
    }

    #[test]
    fn gate_histogram_counts_by_name() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cx(0, 1).cx(1, 2).cx(0, 2);
        let hist = c.gate_histogram();
        assert_eq!(hist, vec![("cx".to_string(), 3), ("h".to_string(), 2)]);
    }

    #[test]
    #[should_panic(expected = "references qubit")]
    fn push_rejects_out_of_range_qubit() {
        let mut c = Circuit::new(2);
        c.h(5);
    }

    #[test]
    fn extend_appends_other_circuit() {
        let mut a = Circuit::new(3);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.extend(&b);
        assert_eq!(a.num_gates(), 2);
    }
}

//! Gate decomposition passes.
//!
//! The paper's simulator handles multi-controlled gates "via gate
//! decomposition to convert it to the single-qubit case with a proper offset"
//! (Sec. III-A footnote). This module provides the standard textbook
//! decompositions of three-qubit gates into one- and two-qubit gates so any
//! engine restricted to arity ≤ 2 can still execute every benchmark circuit,
//! and so partitioners can be evaluated on pre- and post-decomposition DAGs.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind, Qubit};

/// Decompose a single gate into a sequence of gates of arity ≤ `max_arity`.
///
/// Gates already within the arity bound are returned unchanged. `max_arity`
/// must be 2 or 3; 1 is impossible for entangling gates.
pub fn decompose_gate(gate: &Gate, max_arity: usize) -> Vec<Gate> {
    assert!(
        (2..=3).contains(&max_arity),
        "max_arity must be 2 or 3, got {max_arity}"
    );
    if gate.arity() <= max_arity {
        return vec![gate.clone()];
    }
    match gate.kind {
        GateKind::Ccx => ccx_to_two_qubit(gate.qubits[0], gate.qubits[1], gate.qubits[2]),
        GateKind::Cswap => {
            // Fredkin = CX(b→a') sandwich: cswap(c,a,b) = cx(b,a) ccx(c,a,b) cx(b,a)
            let (c, a, b) = (gate.qubits[0], gate.qubits[1], gate.qubits[2]);
            let mut out = vec![Gate::new(GateKind::Cx, vec![b, a])];
            out.extend(ccx_to_two_qubit(c, a, b));
            out.push(Gate::new(GateKind::Cx, vec![b, a]));
            out
        }
        ref other => panic!("no decomposition registered for gate {}", other.name()),
    }
}

/// The standard 6-CNOT + single-qubit-gate decomposition of the Toffoli gate.
fn ccx_to_two_qubit(c0: Qubit, c1: Qubit, t: Qubit) -> Vec<Gate> {
    use GateKind::*;
    vec![
        Gate::new(H, vec![t]),
        Gate::new(Cx, vec![c1, t]),
        Gate::new(Tdg, vec![t]),
        Gate::new(Cx, vec![c0, t]),
        Gate::new(T, vec![t]),
        Gate::new(Cx, vec![c1, t]),
        Gate::new(Tdg, vec![t]),
        Gate::new(Cx, vec![c0, t]),
        Gate::new(T, vec![c1]),
        Gate::new(T, vec![t]),
        Gate::new(H, vec![t]),
        Gate::new(Cx, vec![c0, c1]),
        Gate::new(T, vec![c0]),
        Gate::new(Tdg, vec![c1]),
        Gate::new(Cx, vec![c0, c1]),
    ]
}

/// Decompose every gate of a circuit so no gate exceeds `max_arity` operands.
pub fn decompose_circuit(circuit: &Circuit, max_arity: usize) -> Circuit {
    let mut out = Circuit::named(circuit.name.clone(), circuit.num_qubits());
    for gate in circuit.gates() {
        for g in decompose_gate(gate, max_arity) {
            out.push(g);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::math::{Complex64, UnitaryMatrix};

    /// Multiply the full 2^n unitary of a (tiny) circuit by building each
    /// gate's embedding explicitly — slow but independent of the simulators,
    /// so it can validate decompositions without a circular test dependency.
    fn circuit_unitary(circuit: &Circuit) -> UnitaryMatrix {
        let n = circuit.num_qubits();
        let dim = 1usize << n;
        let mut total = UnitaryMatrix::identity(dim);
        for gate in circuit.gates() {
            let g = gate.matrix();
            // Embed the k-qubit gate matrix into the full 2^n space: entry
            // (row, col) is non-zero only when row and col agree on all
            // untouched qubits, and equals g(sub_row, sub_col) on the touched
            // ones (operand j = matrix bit j).
            let mut embedded = UnitaryMatrix::from_rows(vec![Complex64::ZERO; dim * dim]);
            for col in 0..dim {
                let mut sub_col = 0usize;
                for (j, &q) in gate.qubits.iter().enumerate() {
                    sub_col |= ((col >> q) & 1) << j;
                }
                for sub_row in 0..g.dim() {
                    let amp = g.get(sub_row, sub_col);
                    if amp == Complex64::ZERO {
                        continue;
                    }
                    let mut row = col;
                    for (j, &q) in gate.qubits.iter().enumerate() {
                        let bit = (sub_row >> j) & 1;
                        row = (row & !(1 << q)) | (bit << q);
                    }
                    *embedded.get_mut(row, col) = amp;
                }
            }
            total = embedded.matmul(&total);
        }
        total
    }

    #[test]
    fn toffoli_decomposition_matches_unitary() {
        let mut original = Circuit::new(3);
        original.ccx(0, 1, 2);
        let decomposed = decompose_circuit(&original, 2);
        assert!(decomposed.gates().iter().all(|g| g.arity() <= 2));
        let u1 = circuit_unitary(&original);
        let u2 = circuit_unitary(&decomposed);
        assert!(u1.approx_eq(&u2, 1e-9), "toffoli decomposition is wrong");
    }

    #[test]
    fn fredkin_decomposition_matches_unitary() {
        let mut original = Circuit::new(3);
        original.add(GateKind::Cswap, &[0, 1, 2]);
        let decomposed = decompose_circuit(&original, 2);
        assert!(decomposed.gates().iter().all(|g| g.arity() <= 2));
        let u1 = circuit_unitary(&original);
        let u2 = circuit_unitary(&decomposed);
        assert!(u1.approx_eq(&u2, 1e-9), "fredkin decomposition is wrong");
    }

    #[test]
    fn decompose_is_identity_for_small_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let d = decompose_circuit(&c, 2);
        assert_eq!(c, d);
    }

    #[test]
    fn max_arity_three_keeps_toffolis() {
        let c = generators::adder(8);
        let d = decompose_circuit(&c, 3);
        assert_eq!(c.num_gates(), d.num_gates());
        let d2 = decompose_circuit(&c, 2);
        assert!(d2.num_gates() > c.num_gates());
        assert!(d2.gates().iter().all(|g| g.arity() <= 2));
    }

    #[test]
    #[should_panic(expected = "max_arity must be 2 or 3")]
    fn rejects_bad_max_arity() {
        let g = Gate::new(GateKind::Ccx, vec![0, 1, 2]);
        let _ = decompose_gate(&g, 1);
    }
}

//! # hisvsim-circuit
//!
//! Quantum circuit intermediate representation for HiSVSIM-RS, the Rust
//! reproduction of *"Efficient Hierarchical State Vector Simulation of
//! Quantum Circuits via Acyclic Graph Partitioning"* (CLUSTER 2022).
//!
//! This crate is the bottom of the workspace dependency graph and provides:
//!
//! * [`math`] — the [`Complex64`](math::Complex64) amplitude type and small
//!   unitary matrices,
//! * [`gate`] — the gate vocabulary ([`GateKind`](gate::GateKind)) with
//!   unitaries, inverses and metadata,
//! * [`circuit`] — the [`Circuit`](circuit::Circuit) IR and builder,
//! * [`qasm`] — an OpenQASM 2.0 reader/writer for the QASMBench subset,
//! * [`generators`] — re-implementations of the paper's 13 benchmark circuit
//!   configurations (Table I), parameterised by width,
//! * [`decompose`] — decomposition of ≥3-qubit gates into 1–2 qubit gates.
//!
//! ## Example
//!
//! ```
//! use hisvsim_circuit::prelude::*;
//!
//! let mut c = Circuit::named("bell", 2);
//! c.h(0).cx(0, 1);
//! assert_eq!(c.depth(), 2);
//! assert!(c.gates()[0].matrix().is_unitary(1e-12));
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod decompose;
pub mod gate;
pub mod generators;
pub mod math;
pub mod qasm;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::circuit::Circuit;
    pub use crate::gate::{Gate, GateKind, Qubit};
    pub use crate::math::{Complex64, UnitaryMatrix};
}

pub use circuit::Circuit;
pub use gate::{Gate, GateKind, Qubit};
pub use math::{Complex64, UnitaryMatrix};

//! QASMBench-style benchmark circuit generators.
//!
//! The HiSVSIM paper evaluates 13 circuit configurations drawn from the
//! QASMBench suite (Table I). The suite files themselves are not vendored
//! here; instead each family is re-implemented from its defining algorithm so
//! that any register width can be generated, which is what lets the benchmark
//! harness run the paper's circuit families at laptop-scale widths while
//! keeping the same dependency structure (the property the partitioners care
//! about).
//!
//! All generators are deterministic for a given set of arguments; families
//! with random structure (QAOA's graph, BV's secret, QNN/random circuits)
//! take an explicit seed.

use crate::circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// GHZ / "Schrödinger cat" state preparation: `H` on qubit 0 followed by a
/// CNOT chain. Matches the `cat_state` benchmark.
pub fn cat_state(n: usize) -> Circuit {
    assert!(n >= 2, "cat state needs at least 2 qubits");
    let mut c = Circuit::named(format!("cat_state{n}"), n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

/// Bernstein–Vazirani circuit for an `n`-qubit register: `n - 1` data qubits
/// holding the secret string and one ancilla (the last qubit).
///
/// The secret string is derived from `seed` so different widths give
/// different but reproducible circuits.
pub fn bv(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "bernstein-vazirani needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let data = n - 1;
    let ancilla = n - 1;
    let secret: Vec<bool> = (0..data).map(|_| rng.gen_bool(0.75)).collect();
    let mut c = Circuit::named(format!("bv{n}"), n);
    // Prepare ancilla in |-> and data in |+>.
    c.x(ancilla).h(ancilla);
    for q in 0..data {
        c.h(q);
    }
    // Oracle: CX from every secret-bit qubit into the ancilla.
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.cx(q, ancilla);
        }
    }
    // Un-superpose the data register.
    for q in 0..data {
        c.h(q);
    }
    c
}

/// QAOA MaxCut ansatz on a random 3-regular-ish graph with `layers` of
/// (cost, mixer) blocks. Matches the structure of the `qaoa` benchmark:
/// per edge a `CX — RZ — CX` cost term, per qubit an `RX` mixer.
pub fn qaoa(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n >= 3, "qaoa needs at least 3 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(format!("qaoa{n}"), n);
    // Random graph: ring plus ~n/2 random chords (keeps degree low but
    // non-trivial, similar to the MaxCut instances in QASMBench).
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let extra = n / 2;
    let mut added = 0;
    while added < extra {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a, b)) && !edges.contains(&(b, a)) {
            edges.push((a.min(b), a.max(b)));
            added += 1;
        }
    }
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..layers {
        let gamma: f64 = rng.gen_range(0.0..PI);
        let beta: f64 = rng.gen_range(0.0..PI);
        for &(a, b) in &edges {
            c.cx(a, b);
            c.rz(2.0 * gamma, b);
            c.cx(a, b);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

/// Counterfeit-coin finding circuit (`cc`): a query register of `n - 1`
/// qubits and one result ancilla, following the structure of the QASMBench
/// benchmark (superposed query, oracle of CNOTs onto the ancilla, measurement
/// basis change).
pub fn cc(n: usize, seed: u64) -> Circuit {
    assert!(n >= 3, "counterfeit coin needs at least 3 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let coins = n - 1;
    let ancilla = n - 1;
    let fake = rng.gen_range(0..coins);
    let mut c = Circuit::named(format!("cc{n}"), n);
    for q in 0..coins {
        c.h(q);
    }
    // Balance oracle: every queried coin toggles the ancilla; the fake coin
    // additionally kicks back a phase through a CZ-like construction.
    for q in 0..coins {
        c.cx(q, ancilla);
    }
    c.h(ancilla);
    c.cx(fake, ancilla);
    c.h(ancilla);
    for q in 0..coins {
        c.cx(q, ancilla);
    }
    for q in 0..coins {
        c.h(q);
    }
    c
}

/// One-dimensional transverse-field Ising model Trotter evolution (`ising`):
/// `steps` Trotter steps of nearest-neighbour ZZ couplings (as CX–RZ–CX) and
/// per-qubit RX transverse-field terms.
pub fn ising(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2, "ising chain needs at least 2 qubits");
    let mut c = Circuit::named(format!("ising{n}"), n);
    let dt = 0.1_f64;
    let j = 1.0_f64;
    let h_field = 2.0_f64;
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..steps {
        // Even bonds then odd bonds, as in a brickwork Trotter circuit.
        for parity in 0..2 {
            let mut q = parity;
            while q + 1 < n {
                c.cx(q, q + 1);
                c.rz(-2.0 * j * dt, q + 1);
                c.cx(q, q + 1);
                q += 2;
            }
        }
        for q in 0..n {
            c.rx(-2.0 * h_field * dt, q);
        }
    }
    c
}

/// Quantum Fourier transform on `n` qubits including the final qubit-reversal
/// swaps (`qft`).
///
/// Uses the textbook construction (most-significant qubit processed first),
/// so the circuit implements the standard little-endian DFT
/// `|k⟩ → 2^{-n/2} Σ_m e^{2πi k m / 2^n} |m⟩`.
pub fn qft(n: usize) -> Circuit {
    assert!(n >= 1);
    let mut c = Circuit::named(format!("qft{n}"), n);
    for i in (0..n).rev() {
        c.h(i);
        for j in (0..i).rev() {
            let angle = PI / (1u64 << (i - j)) as f64;
            c.cp(angle, j, i);
        }
    }
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

/// Append the inverse quantum Fourier transform on the given qubits (the
/// exact inverse of the gate sequence produced by [`qft`]).
pub fn append_inverse_qft(c: &mut Circuit, qubits: &[usize]) {
    let n = qubits.len();
    for i in 0..n / 2 {
        c.swap(qubits[i], qubits[n - 1 - i]);
    }
    for i in 0..n {
        for j in 0..i {
            let angle = -PI / (1u64 << (i - j)) as f64;
            c.cp(angle, qubits[j], qubits[i]);
        }
        c.h(qubits[i]);
    }
}

/// A layered "quantum neural network" ansatz (`qnn`): alternating layers of
/// parameterised single-qubit rotations and a linear CNOT entangler, closing
/// with a final rotation layer. Parameters are seeded.
pub fn qnn(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(format!("qnn{n}"), n);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..layers {
        for q in 0..n {
            c.ry(rng.gen_range(0.0..PI), q);
            c.rz(rng.gen_range(0.0..PI), q);
        }
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
    }
    for q in 0..n {
        c.ry(rng.gen_range(0.0..PI), q);
    }
    c
}

/// Append a multi-controlled X with controls `controls`, target `target`,
/// using the V-chain of Toffolis through `work` ancilla qubits.
///
/// Requires `work.len() >= controls.len().saturating_sub(2)`. The ancillas
/// are returned to their initial state (the chain is uncomputed).
pub fn append_mcx(c: &mut Circuit, controls: &[usize], target: usize, work: &[usize]) {
    match controls.len() {
        0 => {
            c.x(target);
        }
        1 => {
            c.cx(controls[0], target);
        }
        2 => {
            c.ccx(controls[0], controls[1], target);
        }
        k => {
            assert!(
                work.len() >= k - 2,
                "multi-controlled X on {k} controls needs {} work qubits, got {}",
                k - 2,
                work.len()
            );
            // Compute chain.
            c.ccx(controls[0], controls[1], work[0]);
            for i in 2..k - 1 {
                c.ccx(controls[i], work[i - 2], work[i - 1]);
            }
            c.ccx(controls[k - 1], work[k - 3], target);
            // Uncompute chain.
            for i in (2..k - 1).rev() {
                c.ccx(controls[i], work[i - 2], work[i - 1]);
            }
            c.ccx(controls[0], controls[1], work[0]);
        }
    }
}

/// Grover's search (`grover`) over a search register, an oracle ancilla, and
/// the work qubits needed by the Toffoli chain.
///
/// For an `n`-qubit circuit the register splits as: `s` search qubits, one
/// oracle ancilla, and `s - 2` work qubits where `s` is the largest value
/// satisfying `s + 1 + max(s - 2, 0) <= n`. The remaining qubits (if any) are
/// left idle. `iterations` Grover iterations are applied.
pub fn grover(n: usize, iterations: usize, seed: u64) -> Circuit {
    assert!(n >= 3, "grover needs at least 3 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    // Largest search width s such that s search qubits + 1 ancilla +
    // max(s-2, 0) Toffoli-chain work qubits fit in n.
    let fits = |s: usize| s + 1 + s.saturating_sub(2) <= n;
    let mut s = 2;
    while fits(s + 1) {
        s += 1;
    }
    let search: Vec<usize> = (0..s).collect();
    let ancilla = s;
    let work: Vec<usize> = (s + 1..n).collect();
    let marked: u64 = rng.gen_range(0..(1u64 << s));
    let mut c = Circuit::named(format!("grover{n}"), n);
    // Ancilla in |->.
    c.x(ancilla).h(ancilla);
    for &q in &search {
        c.h(q);
    }
    for _ in 0..iterations {
        // Oracle: flip ancilla when the search register equals `marked`.
        for (i, &q) in search.iter().enumerate() {
            if (marked >> i) & 1 == 0 {
                c.x(q);
            }
        }
        append_mcx(&mut c, &search, ancilla, &work);
        for (i, &q) in search.iter().enumerate() {
            if (marked >> i) & 1 == 0 {
                c.x(q);
            }
        }
        // Diffusion about the mean.
        for &q in &search {
            c.h(q);
            c.x(q);
        }
        // Multi-controlled Z on the search register via H-MCX-H on the last
        // search qubit.
        let (&last, rest) = search.split_last().unwrap();
        c.h(last);
        append_mcx(&mut c, rest, last, &work);
        c.h(last);
        for &q in &search {
            c.x(q);
            c.h(q);
        }
    }
    c
}

/// Quantum phase estimation (`qpe`): `n - 1` counting qubits estimating the
/// phase of a `P(θ)` unitary applied to one eigenstate qubit, followed by the
/// inverse QFT on the counting register.
pub fn qpe(n: usize) -> Circuit {
    assert!(n >= 3, "qpe needs at least 3 qubits");
    let counting = n - 1;
    let target = n - 1;
    let theta = 2.0 * PI * 0.34375; // an exactly representable 5-bit phase
    let mut c = Circuit::named(format!("qpe{n}"), n);
    c.x(target); // eigenstate |1> of P(θ)
    for q in 0..counting {
        c.h(q);
    }
    for q in 0..counting {
        // Controlled-U^{2^q}: a phase gate's power is a scaled phase.
        let angle = theta * (1u64 << q) as f64;
        c.cp(angle, q, target);
    }
    let counting_qubits: Vec<usize> = (0..counting).collect();
    append_inverse_qft(&mut c, &counting_qubits);
    c
}

/// Cuccaro ripple-carry adder (`adder`): adds two `k`-bit registers using one
/// carry-in and one carry-out qubit, so `n = 2k + 2`. If `n` is odd the last
/// qubit is left idle.
pub fn adder(n: usize) -> Circuit {
    assert!(n >= 4, "adder needs at least 4 qubits");
    let k = (n - 2) / 2;
    let mut c = Circuit::named(format!("adder{n}"), n);
    // Layout: cin = 0, a_i = 1 + 2i, b_i = 2 + 2i, cout = 2k + 1.
    let cin = 0;
    let a = |i: usize| 1 + 2 * i;
    let b = |i: usize| 2 + 2 * i;
    let cout = 2 * k + 1;

    // Prepare non-trivial operands so the simulation is not an identity on
    // |0...0>: put register A into superposition and set some bits of B.
    for i in 0..k {
        c.h(a(i));
        if i % 3 == 0 {
            c.x(b(i));
        }
    }

    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cx(z, y);
        c.cx(z, x);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cx(z, x);
        c.cx(x, y);
    };

    maj(&mut c, cin, b(0), a(0));
    for i in 1..k {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    c.cx(a(k - 1), cout);
    for i in (1..k).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, cin, b(0), a(0));
    c
}

/// A random circuit of `num_gates` gates drawn from a mix of common one- and
/// two-qubit gates. Used by property tests and stress benches.
pub fn random_circuit(n: usize, num_gates: usize, seed: u64) -> Circuit {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::named(format!("random{n}x{num_gates}"), n);
    for _ in 0..num_gates {
        let choice = rng.gen_range(0..10);
        let q = rng.gen_range(0..n);
        match choice {
            0 => {
                c.h(q);
            }
            1 => {
                c.x(q);
            }
            2 => {
                c.rz(rng.gen_range(0.0..PI), q);
            }
            3 => {
                c.ry(rng.gen_range(0.0..PI), q);
            }
            4 => {
                c.t(q);
            }
            5 => {
                c.s(q);
            }
            _ => {
                let mut p = rng.gen_range(0..n);
                while p == q {
                    p = rng.gen_range(0..n);
                }
                match choice {
                    6 | 7 => {
                        c.cx(q, p);
                    }
                    8 => {
                        c.cz(q, p);
                    }
                    _ => {
                        c.cp(rng.gen_range(0.0..PI), q, p);
                    }
                }
            }
        }
    }
    c
}

/// The benchmark families evaluated in the paper, by canonical name.
pub const FAMILY_NAMES: &[&str] = &[
    "cat_state",
    "bv",
    "qaoa",
    "cc",
    "ising",
    "qft",
    "qnn",
    "grover",
    "qpe",
    "adder",
];

/// Build a benchmark circuit by family name at the requested width.
///
/// The per-family depth parameters are chosen so that the gate counts scale
/// like the paper's Table I configurations. Unknown names panic.
pub fn by_name(name: &str, n: usize) -> Circuit {
    match name {
        "cat_state" => cat_state(n),
        "bv" => bv(n, 0xB5),
        "qaoa" => qaoa(n, 2, 0xA0A),
        "cc" => cc(n, 0xCC),
        "ising" => ising(n, 3),
        "qft" => qft(n),
        "qnn" => qnn(n, 2, 0x99),
        "grover" => grover(n, 1, 0x6F),
        "qpe" => qpe(n),
        "adder" => adder(n),
        other => panic!("unknown benchmark family: {other}"),
    }
}

/// One row of the paper's Table I: a named circuit configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Family name (e.g. `"bv"`).
    pub family: &'static str,
    /// Human-readable description (as in Table I).
    pub description: &'static str,
    /// Qubit count used in the paper.
    pub paper_qubits: usize,
    /// Gate count reported in the paper.
    pub paper_gates: usize,
    /// State-vector memory reported in the paper.
    pub paper_memory: &'static str,
    /// Qubit count used by this reproduction (scaled down to fit one machine).
    pub repro_qubits: usize,
}

/// The 13 circuit configurations of Table I, with the scaled-down widths used
/// by the reproduction harness.
pub fn paper_suite() -> Vec<BenchConfig> {
    vec![
        BenchConfig {
            family: "cat_state",
            description: "Coherent superposition",
            paper_qubits: 30,
            paper_gates: 60,
            paper_memory: "16 GB",
            repro_qubits: 20,
        },
        BenchConfig {
            family: "bv",
            description: "Bernstein-Vazirani algorithm",
            paper_qubits: 30,
            paper_gates: 102,
            paper_memory: "16 GB",
            repro_qubits: 20,
        },
        BenchConfig {
            family: "qaoa",
            description: "Quantum approx. optimization",
            paper_qubits: 30,
            paper_gates: 1380,
            paper_memory: "16 GB",
            repro_qubits: 20,
        },
        BenchConfig {
            family: "cc",
            description: "Counterfeit coin finding",
            paper_qubits: 30,
            paper_gates: 149,
            paper_memory: "16 GB",
            repro_qubits: 20,
        },
        BenchConfig {
            family: "ising",
            description: "Quantum simulation for ising model",
            paper_qubits: 30,
            paper_gates: 354,
            paper_memory: "16 GB",
            repro_qubits: 20,
        },
        BenchConfig {
            family: "qft",
            description: "Quantum Fourier transform",
            paper_qubits: 30,
            paper_gates: 2235,
            paper_memory: "16 GB",
            repro_qubits: 20,
        },
        BenchConfig {
            family: "qnn",
            description: "Quantum neural network",
            paper_qubits: 31,
            paper_gates: 164,
            paper_memory: "32 GB",
            repro_qubits: 21,
        },
        BenchConfig {
            family: "grover",
            description: "Grover's algorithm",
            paper_qubits: 31,
            paper_gates: 207,
            paper_memory: "32 GB",
            repro_qubits: 21,
        },
        BenchConfig {
            family: "qpe",
            description: "Quantum phase estimation",
            paper_qubits: 31,
            paper_gates: 5731,
            paper_memory: "32 GB",
            repro_qubits: 21,
        },
        BenchConfig {
            family: "bv",
            description: "Bernstein-Vazirani algorithm",
            paper_qubits: 35,
            paper_gates: 119,
            paper_memory: "512 GB",
            repro_qubits: 23,
        },
        BenchConfig {
            family: "ising",
            description: "Quantum simulation for ising model",
            paper_qubits: 35,
            paper_gates: 414,
            paper_memory: "512 GB",
            repro_qubits: 23,
        },
        BenchConfig {
            family: "cc",
            description: "Counterfeit coin finding",
            paper_qubits: 36,
            paper_gates: 106,
            paper_memory: "1 TB",
            repro_qubits: 24,
        },
        BenchConfig {
            family: "adder",
            description: "Quantum Ripple-Carry adder",
            paper_qubits: 37,
            paper_gates: 154,
            paper_memory: "2 TB",
            repro_qubits: 24,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateKind;

    #[test]
    fn cat_state_structure() {
        let c = cat_state(10);
        assert_eq!(c.num_qubits(), 10);
        assert_eq!(c.num_gates(), 10); // 1 H + 9 CX
        assert_eq!(c.gates()[0].kind, GateKind::H);
        assert!(c.gates()[1..].iter().all(|g| g.kind == GateKind::Cx));
    }

    #[test]
    fn bv_uses_every_data_qubit() {
        let c = bv(12, 7);
        assert_eq!(c.num_qubits(), 12);
        let used = c.used_qubits();
        assert!(used.contains(&11)); // ancilla
                                     // All data qubits get the two H's even if not part of the secret.
        assert_eq!(used.len(), 12);
    }

    #[test]
    fn bv_is_deterministic_per_seed() {
        assert_eq!(bv(10, 3), bv(10, 3));
        assert_ne!(bv(10, 3), bv(10, 4));
    }

    #[test]
    fn qaoa_gate_count_scales_with_layers() {
        let one = qaoa(10, 1, 1);
        let two = qaoa(10, 2, 1);
        assert!(two.num_gates() > one.num_gates());
        assert_eq!(one.num_qubits(), 10);
    }

    #[test]
    fn ising_touches_all_qubits_and_is_layered() {
        let c = ising(8, 3);
        assert_eq!(c.used_qubits().len(), 8);
        // 8 H + per step: 7 bonds * 3 gates + 8 RX = 29 -> 8 + 3*29 = 95
        assert_eq!(c.num_gates(), 95);
    }

    #[test]
    fn qft_gate_count_formula() {
        let n = 8;
        let c = qft(n);
        // n H + n(n-1)/2 controlled-phase + floor(n/2) swaps
        assert_eq!(c.num_gates(), n + n * (n - 1) / 2 + n / 2);
    }

    #[test]
    fn qpe_ends_with_inverse_qft_on_counting_register() {
        let c = qpe(6);
        assert_eq!(c.num_qubits(), 6);
        assert!(c.num_gates() > 10);
        // The eigenstate qubit is prepared with an X first.
        assert_eq!(c.gates()[0].kind, GateKind::X);
        assert_eq!(c.gates()[0].qubits, vec![5]);
    }

    #[test]
    fn grover_fits_requested_width() {
        for n in [3, 5, 8, 13, 21] {
            let c = grover(n, 1, 42);
            assert_eq!(c.num_qubits(), n);
            assert!(c.num_gates() > 0, "grover({n}) is empty");
        }
    }

    #[test]
    fn mcx_work_qubit_requirement_enforced() {
        let mut c = Circuit::new(6);
        // 3 controls need exactly 1 work qubit; this must succeed and the
        // chain must be uncomputed (equal numbers of each Toffoli).
        append_mcx(&mut c, &[0, 1, 2], 5, &[4]);
        assert_eq!(c.num_gates(), 3);
        assert!(c.gates().iter().all(|g| g.kind == GateKind::Ccx));
    }

    #[test]
    #[should_panic(expected = "work qubits")]
    fn mcx_panics_without_enough_work_qubits() {
        let mut c = Circuit::new(6);
        append_mcx(&mut c, &[0, 1, 2, 3, 4], 5, &[]);
    }

    #[test]
    fn adder_width_and_gate_mix() {
        let c = adder(10); // k = 4
        assert_eq!(c.num_qubits(), 10);
        let hist = c.gate_histogram();
        let ccx = hist
            .iter()
            .find(|(n, _)| n == "ccx")
            .map(|(_, c)| *c)
            .unwrap();
        assert_eq!(ccx, 8); // 2 per MAJ/UMA pair, k pairs
    }

    #[test]
    fn random_circuit_is_reproducible() {
        assert_eq!(random_circuit(6, 40, 9), random_circuit(6, 40, 9));
        assert_eq!(random_circuit(6, 40, 9).num_gates(), 40);
    }

    #[test]
    fn by_name_builds_every_family() {
        for name in FAMILY_NAMES {
            let c = by_name(name, 8);
            assert_eq!(c.num_qubits(), 8, "{name} has wrong width");
            assert!(c.num_gates() > 0, "{name} is empty");
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark family")]
    fn by_name_rejects_unknown() {
        let _ = by_name("nope", 8);
    }

    #[test]
    fn paper_suite_matches_table1_shape() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 13);
        assert_eq!(suite.iter().filter(|c| c.paper_qubits >= 35).count(), 4);
        // Every family name resolves.
        for cfg in &suite {
            let c = by_name(cfg.family, cfg.repro_qubits.min(12));
            assert!(c.num_gates() > 0);
        }
    }
}

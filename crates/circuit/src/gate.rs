//! Quantum gate definitions: the gate vocabulary understood by the parsers,
//! generators, partitioners, and simulators.
//!
//! Every [`Gate`] carries its operand qubits and a [`GateKind`]; the kind can
//! always produce the gate's unitary matrix (in the qubit ordering described
//! on [`GateKind::matrix`]) so that any simulator in the workspace can apply
//! it without a hand-written kernel, while the common kinds additionally get
//! specialised fast paths.

use crate::math::{mat2, mat4, Complex64, UnitaryMatrix};
use serde::{Deserialize, Serialize};
use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

/// Index of a qubit within a circuit (0-based, little-endian: qubit 0 is the
/// least-significant bit of a state index).
pub type Qubit = usize;

/// The kind of a quantum gate, including any continuous parameters.
///
/// The set covers everything emitted by the QASMBench-style generators in
/// [`crate::generators`] plus the OpenQASM 2.0 standard-library gates needed
/// to parse external circuit files.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GateKind {
    /// Identity (no-op placeholder; still occupies a DAG node).
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S-dagger.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T-dagger.
    Tdg,
    /// Square root of X.
    Sx,
    /// Inverse square root of X.
    Sxdg,
    /// Rotation about X by theta.
    Rx(f64),
    /// Rotation about Y by theta.
    Ry(f64),
    /// Rotation about Z by theta.
    Rz(f64),
    /// Phase rotation diag(1, e^{iλ}) (OpenQASM `u1`/`p`).
    P(f64),
    /// OpenQASM u2(φ, λ).
    U2(f64, f64),
    /// OpenQASM u3(θ, φ, λ) — the general single-qubit gate.
    U3(f64, f64, f64),
    /// Controlled-X (CNOT); operands are `[control, target]`.
    Cx,
    /// Controlled-Y; operands are `[control, target]`.
    Cy,
    /// Controlled-Z; operands are `[control, target]`.
    Cz,
    /// Controlled-H; operands are `[control, target]`.
    Ch,
    /// Controlled phase diag(1,1,1,e^{iλ}); operands are `[control, target]`.
    Cp(f64),
    /// Controlled-RX; operands are `[control, target]`.
    Crx(f64),
    /// Controlled-RY; operands are `[control, target]`.
    Cry(f64),
    /// Controlled-RZ; operands are `[control, target]`.
    Crz(f64),
    /// Controlled-U3; operands are `[control, target]`.
    Cu3(f64, f64, f64),
    /// Two-qubit ZZ interaction exp(-i θ/2 Z⊗Z); operands `[a, b]`.
    Rzz(f64),
    /// Two-qubit XX interaction exp(-i θ/2 X⊗X); operands `[a, b]`.
    Rxx(f64),
    /// SWAP; operands `[a, b]`.
    Swap,
    /// Toffoli (CCX); operands are `[control, control, target]`.
    Ccx,
    /// Controlled-SWAP (Fredkin); operands are `[control, a, b]`.
    Cswap,
}

impl GateKind {
    /// Number of qubit operands the gate expects.
    pub fn arity(&self) -> usize {
        use GateKind::*;
        match self {
            I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | Rx(_) | Ry(_) | Rz(_) | P(_)
            | U2(..) | U3(..) => 1,
            Cx | Cy | Cz | Ch | Cp(_) | Crx(_) | Cry(_) | Crz(_) | Cu3(..) | Rzz(_) | Rxx(_)
            | Swap => 2,
            Ccx | Cswap => 3,
        }
    }

    /// Canonical lowercase OpenQASM-style mnemonic (without parameters).
    pub fn name(&self) -> &'static str {
        use GateKind::*;
        match self {
            I => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            P(_) => "p",
            U2(..) => "u2",
            U3(..) => "u3",
            Cx => "cx",
            Cy => "cy",
            Cz => "cz",
            Ch => "ch",
            Cp(_) => "cp",
            Crx(_) => "crx",
            Cry(_) => "cry",
            Crz(_) => "crz",
            Cu3(..) => "cu3",
            Rzz(_) => "rzz",
            Rxx(_) => "rxx",
            Swap => "swap",
            Ccx => "ccx",
            Cswap => "cswap",
        }
    }

    /// Continuous parameters of the gate, in declaration order.
    pub fn params(&self) -> Vec<f64> {
        use GateKind::*;
        match *self {
            Rx(a) | Ry(a) | Rz(a) | P(a) | Cp(a) | Crx(a) | Cry(a) | Crz(a) | Rzz(a) | Rxx(a) => {
                vec![a]
            }
            U2(a, b) => vec![a, b],
            U3(a, b, c) | Cu3(a, b, c) => vec![a, b, c],
            _ => vec![],
        }
    }

    /// True when the gate's matrix is diagonal in the computational basis.
    ///
    /// Diagonal gates never mix amplitudes across index pairs, which lets
    /// simulators use a cheaper elementwise kernel and lets the cache model
    /// know the access is a pure streaming read-modify-write.
    pub fn is_diagonal(&self) -> bool {
        use GateKind::*;
        matches!(
            self,
            I | Z | S | Sdg | T | Tdg | Rz(_) | P(_) | Cz | Cp(_) | Crz(_) | Rzz(_)
        )
    }

    /// True for controlled gates whose first operand(s) are pure controls.
    pub fn num_controls(&self) -> usize {
        use GateKind::*;
        match self {
            Cx | Cy | Cz | Ch | Cp(_) | Crx(_) | Cry(_) | Crz(_) | Cu3(..) => 1,
            Ccx => 2,
            Cswap => 1,
            _ => 0,
        }
    }

    /// The unitary matrix of this gate.
    ///
    /// Qubit-ordering convention: for a gate on operands `[q_0, q_1, ..,
    /// q_{k-1}]` the matrix acts on a `2^k` vector whose index bits are
    /// `b_{k-1} .. b_1 b_0` with `b_j` the value of operand `q_j` — i.e. the
    /// *first* operand is the least-significant bit of the matrix index. This
    /// matches how the generic k-qubit kernel in `hisvsim-statevec` assembles
    /// its gather indices.
    pub fn matrix(&self) -> UnitaryMatrix {
        use GateKind::*;
        let z = Complex64::ZERO;
        let o = Complex64::ONE;
        let i = Complex64::I;
        let h = Complex64::real(FRAC_1_SQRT_2);
        match *self {
            I => UnitaryMatrix::identity(2),
            X => mat2(z, o, o, z),
            Y => mat2(z, -i, i, z),
            Z => mat2(o, z, z, -o),
            H => mat2(h, h, h, -h),
            S => mat2(o, z, z, i),
            Sdg => mat2(o, z, z, -i),
            T => mat2(o, z, z, Complex64::cis(std::f64::consts::FRAC_PI_4)),
            Tdg => mat2(o, z, z, Complex64::cis(-std::f64::consts::FRAC_PI_4)),
            Sx => {
                let p = Complex64::new(0.5, 0.5);
                let m = Complex64::new(0.5, -0.5);
                mat2(p, m, m, p)
            }
            Sxdg => {
                let p = Complex64::new(0.5, 0.5);
                let m = Complex64::new(0.5, -0.5);
                mat2(m, p, p, m)
            }
            Rx(t) => {
                let c = Complex64::real((t / 2.0).cos());
                let s = Complex64::imag(-(t / 2.0).sin());
                mat2(c, s, s, c)
            }
            Ry(t) => {
                let c = Complex64::real((t / 2.0).cos());
                let s = Complex64::real((t / 2.0).sin());
                mat2(c, -s, s, c)
            }
            Rz(t) => mat2(Complex64::cis(-t / 2.0), z, z, Complex64::cis(t / 2.0)),
            P(l) => mat2(o, z, z, Complex64::cis(l)),
            U2(phi, lam) => {
                // u2(φ,λ) = 1/√2 [[1, -e^{iλ}], [e^{iφ}, e^{i(φ+λ)}]]
                mat2(
                    h,
                    -Complex64::cis(lam) * h,
                    Complex64::cis(phi) * h,
                    Complex64::cis(phi + lam) * h,
                )
            }
            U3(t, phi, lam) => u3_matrix(t, phi, lam),
            Cx => controlled(&X.matrix()),
            Cy => controlled(&Y.matrix()),
            Cz => controlled(&Z.matrix()),
            Ch => controlled(&H.matrix()),
            Cp(l) => controlled(&P(l).matrix()),
            Crx(t) => controlled(&Rx(t).matrix()),
            Cry(t) => controlled(&Ry(t).matrix()),
            Crz(t) => controlled(&Rz(t).matrix()),
            Cu3(t, phi, lam) => controlled(&u3_matrix(t, phi, lam)),
            Rzz(t) => {
                let e_m = Complex64::cis(-t / 2.0);
                let e_p = Complex64::cis(t / 2.0);
                mat4([
                    e_m, z, z, z, //
                    z, e_p, z, z, //
                    z, z, e_p, z, //
                    z, z, z, e_m,
                ])
            }
            Rxx(t) => {
                let c = Complex64::real((t / 2.0).cos());
                let s = Complex64::imag(-(t / 2.0).sin());
                mat4([
                    c, z, z, s, //
                    z, c, s, z, //
                    z, s, c, z, //
                    s, z, z, c,
                ])
            }
            Swap => mat4([
                o, z, z, z, //
                z, z, o, z, //
                z, o, z, z, //
                z, z, z, o,
            ]),
            Ccx => {
                // 8x8: controls are operands 0 and 1 (matrix bits 0 and 1),
                // target is operand 2 (matrix bit 2). Flip bit 2 when bits
                // 0 and 1 are both set.
                let mut m = UnitaryMatrix::identity(8);
                for row in [3usize, 7] {
                    *m.get_mut(row, row) = z;
                }
                *m.get_mut(3, 7) = o;
                *m.get_mut(7, 3) = o;
                m
            }
            Cswap => {
                // 8x8: control is operand 0 (bit 0); swap operands 1 and 2
                // (bits 1 and 2) when the control bit is set.
                let mut m = UnitaryMatrix::identity(8);
                // states with bit0 = 1: indices 1,3,5,7 ; swap bit1<->bit2
                // affects indices 3 (011) and 5 (101).
                *m.get_mut(3, 3) = z;
                *m.get_mut(5, 5) = z;
                *m.get_mut(3, 5) = o;
                *m.get_mut(5, 3) = o;
                m
            }
        }
    }

    /// The inverse (dagger) of this gate kind, as another gate kind.
    pub fn inverse(&self) -> GateKind {
        use GateKind::*;
        match *self {
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            P(l) => P(-l),
            U2(phi, lam) => U3(-std::f64::consts::FRAC_PI_2, -lam, -phi),
            U3(t, phi, lam) => U3(-t, -lam, -phi),
            Cp(l) => Cp(-l),
            Crx(t) => Crx(-t),
            Cry(t) => Cry(-t),
            Crz(t) => Crz(-t),
            Cu3(t, phi, lam) => Cu3(-t, -lam, -phi),
            Rzz(t) => Rzz(-t),
            Rxx(t) => Rxx(-t),
            Sx => Sxdg,
            Sxdg => Sx,
            other => other, // self-inverse: I, X, Y, Z, H, Cx, Cy, Cz, Ch, Swap, Ccx, Cswap
        }
    }
}

/// Build the general single-qubit u3(θ, φ, λ) matrix.
fn u3_matrix(theta: f64, phi: f64, lam: f64) -> UnitaryMatrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    mat2(
        Complex64::real(c),
        -Complex64::cis(lam) * s,
        Complex64::cis(phi) * s,
        Complex64::cis(phi + lam) * c,
    )
}

/// Lift a single-qubit matrix `u` to the 4×4 controlled version where matrix
/// bit 0 is the control and matrix bit 1 the target (matching the
/// `[control, target]` operand order documented on [`GateKind::matrix`]).
fn controlled(u: &UnitaryMatrix) -> UnitaryMatrix {
    assert_eq!(u.dim(), 2);
    let z = Complex64::ZERO;
    let o = Complex64::ONE;
    // Basis order for (b1=target, b0=control): 00, 01, 10, 11.
    // Control set = indices 1 and 3; on those the target block is `u`.
    mat4([
        o,
        z,
        z,
        z,
        z,
        u.get(0, 0),
        z,
        u.get(0, 1),
        z,
        z,
        o,
        z,
        z,
        u.get(1, 0),
        z,
        u.get(1, 1),
    ])
}

/// A gate instance inside a circuit: a kind plus the qubits it acts on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gate {
    /// What operation this gate performs.
    pub kind: GateKind,
    /// Operand qubits, in the order documented on each [`GateKind`] variant.
    pub qubits: Vec<Qubit>,
}

impl Gate {
    /// Create a gate, checking that the operand count matches the kind's
    /// arity and that no qubit is repeated.
    pub fn new(kind: GateKind, qubits: Vec<Qubit>) -> Self {
        assert_eq!(
            qubits.len(),
            kind.arity(),
            "gate {} expects {} qubits, got {}",
            kind.name(),
            kind.arity(),
            qubits.len()
        );
        for (i, q) in qubits.iter().enumerate() {
            for other in &qubits[i + 1..] {
                assert_ne!(q, other, "gate {} has duplicate qubit {}", kind.name(), q);
            }
        }
        Self { kind, qubits }
    }

    /// Number of operand qubits.
    #[inline]
    pub fn arity(&self) -> usize {
        self.qubits.len()
    }

    /// The gate's unitary matrix (see [`GateKind::matrix`] for ordering).
    pub fn matrix(&self) -> UnitaryMatrix {
        self.kind.matrix()
    }

    /// Remap this gate's qubits through a lookup table (`map[old] = new`).
    ///
    /// Used when a part of a partitioned circuit is re-indexed onto a smaller
    /// inner state vector.
    pub fn remap(&self, map: &[Option<Qubit>]) -> Gate {
        let qubits = self
            .qubits
            .iter()
            .map(|&q| map[q].unwrap_or_else(|| panic!("qubit {q} has no mapping")))
            .collect();
        Gate {
            kind: self.kind,
            qubits,
        }
    }

    /// The inverse gate on the same operands.
    pub fn inverse(&self) -> Gate {
        Gate {
            kind: self.kind.inverse(),
            qubits: self.qubits.clone(),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.kind.params();
        if params.is_empty() {
            write!(f, "{}", self.kind.name())?;
        } else {
            let p: Vec<String> = params.iter().map(|v| format!("{v:.9}")).collect();
            write!(f, "{}({})", self.kind.name(), p.join(","))?;
        }
        let q: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, " {}", q.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn all_kinds() -> Vec<GateKind> {
        use GateKind::*;
        vec![
            I,
            X,
            Y,
            Z,
            H,
            S,
            Sdg,
            T,
            Tdg,
            Sx,
            Sxdg,
            Rx(0.3),
            Ry(1.1),
            Rz(-0.7),
            P(0.5),
            U2(0.1, 0.2),
            U3(0.3, 0.4, 0.5),
            Cx,
            Cy,
            Cz,
            Ch,
            Cp(0.9),
            Crx(0.4),
            Cry(-1.2),
            Crz(2.2),
            Cu3(0.3, 0.1, -0.4),
            Rzz(0.8),
            Rxx(0.8),
            Swap,
            Ccx,
            Cswap,
        ]
    }

    #[test]
    fn every_gate_matrix_is_unitary() {
        for kind in all_kinds() {
            let m = kind.matrix();
            assert!(m.is_unitary(1e-10), "{} is not unitary", kind.name());
            assert_eq!(m.dim(), 1 << kind.arity(), "{} dim mismatch", kind.name());
        }
    }

    #[test]
    fn inverse_matrix_is_dagger() {
        for kind in all_kinds() {
            let m = kind.matrix();
            let inv = kind.inverse().matrix();
            assert!(
                m.matmul(&inv)
                    .approx_eq(&UnitaryMatrix::identity(m.dim()), 1e-10),
                "{} inverse is wrong",
                kind.name()
            );
        }
    }

    #[test]
    fn diagonal_flag_matches_matrix_structure() {
        for kind in all_kinds() {
            let m = kind.matrix();
            let mut diag = true;
            for r in 0..m.dim() {
                for c in 0..m.dim() {
                    if r != c && m.get(r, c).norm() > 1e-12 {
                        diag = false;
                    }
                }
            }
            assert_eq!(
                kind.is_diagonal(),
                diag,
                "is_diagonal() disagrees with the matrix for {}",
                kind.name()
            );
        }
    }

    #[test]
    fn x_gate_flips_basis_states() {
        let x = GateKind::X.matrix();
        assert_eq!(x.get(0, 1), Complex64::ONE);
        assert_eq!(x.get(1, 0), Complex64::ONE);
        assert_eq!(x.get(0, 0), Complex64::ZERO);
    }

    #[test]
    fn rz_and_p_differ_by_global_phase_only() {
        let theta = 0.77;
        let rz = GateKind::Rz(theta).matrix();
        let p = GateKind::P(theta).matrix();
        // Rz(θ) = e^{-iθ/2} P(θ)
        let phase = Complex64::cis(-theta / 2.0);
        for r in 0..2 {
            for c in 0..2 {
                assert!(rz.get(r, c).approx_eq(phase * p.get(r, c), 1e-12));
            }
        }
    }

    #[test]
    fn cx_matrix_respects_control_target_order() {
        // operand order [control, target]; control = matrix bit 0.
        let cx = GateKind::Cx.matrix();
        // |control=1, target=0> = index 0b01 = 1 maps to |11> = 3.
        assert_eq!(cx.get(3, 1), Complex64::ONE);
        assert_eq!(cx.get(1, 3), Complex64::ONE);
        // |control=0, target=0> stays.
        assert_eq!(cx.get(0, 0), Complex64::ONE);
        // |control=0, target=1> = index 2 stays.
        assert_eq!(cx.get(2, 2), Complex64::ONE);
    }

    #[test]
    fn ccx_flips_target_only_when_both_controls_set() {
        let ccx = GateKind::Ccx.matrix();
        // controls = bits 0,1; target = bit 2.
        // index 3 = 0b011 (controls set, target 0) -> 0b111 = 7
        assert_eq!(ccx.get(7, 3), Complex64::ONE);
        assert_eq!(ccx.get(3, 7), Complex64::ONE);
        // index 1 = only one control set: unchanged.
        assert_eq!(ccx.get(1, 1), Complex64::ONE);
    }

    #[test]
    fn u2_equals_u3_with_pi_over_2() {
        let (phi, lam) = (0.31, -1.2);
        let u2 = GateKind::U2(phi, lam).matrix();
        let u3 = GateKind::U3(PI / 2.0, phi, lam).matrix();
        assert!(u2.approx_eq(&u3, 1e-12));
    }

    #[test]
    fn gate_display_format() {
        let g = Gate::new(GateKind::Cx, vec![2, 5]);
        assert_eq!(format!("{g}"), "cx q[2],q[5]");
        let r = Gate::new(GateKind::Rz(0.5), vec![1]);
        assert!(format!("{r}").starts_with("rz(0.5"));
    }

    #[test]
    fn gate_remap_applies_lookup() {
        let g = Gate::new(GateKind::Cx, vec![3, 7]);
        let mut map = vec![None; 8];
        map[3] = Some(0);
        map[7] = Some(1);
        assert_eq!(g.remap(&map).qubits, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "expects")]
    fn gate_new_rejects_wrong_arity() {
        let _ = Gate::new(GateKind::Cx, vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn gate_new_rejects_duplicate_qubits() {
        let _ = Gate::new(GateKind::Cx, vec![4, 4]);
    }
}

//! Minimal complex-number and small-matrix arithmetic shared by the whole
//! workspace.
//!
//! The state-vector crates re-export [`Complex64`]; keeping the type here (the
//! lowest crate in the dependency graph) lets gate definitions carry their own
//! unitary matrices without a circular dependency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number (16 bytes), the amplitude type used by
/// every simulator in the workspace.
///
/// `repr(C)` guarantees the `[re, im]` memory layout the SIMD kernels in
/// `hisvsim-statevec` rely on when reinterpreting amplitude slices as
/// interleaved `f64` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Create a complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64::new(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64::new(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64::new(0.0, 1.0);

    /// Purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Purely imaginary complex number.
    #[inline(always)]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` with unit modulus.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|^2` (the measurement probability of an amplitude).
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiply-accumulate: `self + a * b`, the inner-loop primitive of every
    /// gate kernel.
    #[inline(always)]
    pub fn mul_add(self, a: Complex64, b: Complex64) -> Self {
        Self::new(
            self.re + a.re * b.re - a.im * b.im,
            self.im + a.re * b.im + a.im * b.re,
        )
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// True when both components are within `tol` of the other value's.
    #[inline]
    pub fn approx_eq(self, other: Complex64, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// True when the number is finite in both components.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

/// A dense square complex matrix of dimension `2^k` for a `k`-qubit gate.
///
/// Stored row-major. Small (k ≤ 3 in practice) so no effort is spent on
/// blocking; the simulators unpack 1- and 2-qubit cases into fixed-size
/// kernels anyway.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitaryMatrix {
    dim: usize,
    data: Vec<Complex64>,
}

impl UnitaryMatrix {
    /// Build a matrix from a row-major slice; `data.len()` must be a perfect
    /// square with a power-of-two root.
    pub fn from_rows(data: Vec<Complex64>) -> Self {
        let dim = (data.len() as f64).sqrt().round() as usize;
        assert_eq!(dim * dim, data.len(), "matrix data must be square");
        assert!(dim.is_power_of_two(), "matrix dimension must be 2^k");
        Self { dim, data }
    }

    /// Identity matrix of the given dimension.
    pub fn identity(dim: usize) -> Self {
        assert!(dim.is_power_of_two());
        let mut data = vec![Complex64::ZERO; dim * dim];
        for i in 0..dim {
            data[i * dim + i] = Complex64::ONE;
        }
        Self { dim, data }
    }

    /// Matrix dimension (2^k for a k-qubit gate).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of qubits this matrix acts on (log2 of the dimension).
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.dim.trailing_zeros() as usize
    }

    /// Element accessor (row, column).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Complex64 {
        self.data[row * self.dim + col]
    }

    /// Mutable element accessor (row, column).
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut Complex64 {
        &mut self.data[row * self.dim + col]
    }

    /// Raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Conjugate transpose `U†`.
    pub fn dagger(&self) -> Self {
        let mut out = Self::identity(self.dim);
        for r in 0..self.dim {
            for c in 0..self.dim {
                *out.get_mut(c, r) = self.get(r, c).conj();
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.dim, rhs.dim);
        let mut out = UnitaryMatrix {
            dim: self.dim,
            data: vec![Complex64::ZERO; self.dim * self.dim],
        };
        for r in 0..self.dim {
            for k in 0..self.dim {
                let a = self.get(r, k);
                if a == Complex64::ZERO {
                    continue;
                }
                for c in 0..self.dim {
                    let v = out.get(r, c).mul_add(a, rhs.get(k, c));
                    *out.get_mut(r, c) = v;
                }
            }
        }
        out
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &Self) -> Self {
        let dim = self.dim * rhs.dim;
        let mut data = vec![Complex64::ZERO; dim * dim];
        for ar in 0..self.dim {
            for ac in 0..self.dim {
                let a = self.get(ar, ac);
                for br in 0..rhs.dim {
                    for bc in 0..rhs.dim {
                        data[(ar * rhs.dim + br) * dim + (ac * rhs.dim + bc)] = a * rhs.get(br, bc);
                    }
                }
            }
        }
        Self { dim, data }
    }

    /// Check unitarity: `U U† ≈ I` within `tol` per element.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let product = self.matmul(&self.dagger());
        let identity = Self::identity(self.dim);
        product
            .data
            .iter()
            .zip(identity.data.iter())
            .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Elementwise approximate equality.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.dim == other.dim
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

/// Convenience constructor for a 2×2 matrix from four entries (row-major).
pub fn mat2(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> UnitaryMatrix {
    UnitaryMatrix::from_rows(vec![a, b, c, d])
}

/// Convenience constructor for a 4×4 matrix from sixteen entries (row-major).
pub fn mat4(entries: [Complex64; 16]) -> UnitaryMatrix {
    UnitaryMatrix::from_rows(entries.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_1_SQRT_2, PI};

    #[test]
    fn complex_basic_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
    }

    #[test]
    fn complex_division_roundtrip() {
        let a = Complex64::new(1.5, -0.5);
        let b = Complex64::new(0.25, 2.0);
        let q = a / b;
        assert!((q * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn complex_conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn complex_polar_roundtrip() {
        let z = Complex64::from_polar(2.0, PI / 3.0);
        assert!((z.norm() - 2.0).abs() < 1e-12);
        assert!((z.arg() - PI / 3.0).abs() < 1e-12);
    }

    #[test]
    fn complex_mul_add_matches_expanded_form() {
        let acc = Complex64::new(0.5, -0.25);
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 0.75);
        assert!(acc.mul_add(a, b).approx_eq(acc + a * b, 1e-15));
    }

    #[test]
    fn cis_unit_modulus() {
        for k in 0..16 {
            let theta = k as f64 * PI / 8.0;
            assert!((Complex64::cis(theta).norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matrix_identity_is_unitary() {
        for dim in [2usize, 4, 8] {
            assert!(UnitaryMatrix::identity(dim).is_unitary(1e-12));
        }
    }

    #[test]
    fn hadamard_is_unitary_and_self_inverse() {
        let s = Complex64::real(FRAC_1_SQRT_2);
        let h = mat2(s, s, s, -s);
        assert!(h.is_unitary(1e-12));
        assert!(h.matmul(&h).approx_eq(&UnitaryMatrix::identity(2), 1e-12));
    }

    #[test]
    fn dagger_of_dagger_is_original() {
        let m = mat2(
            Complex64::new(0.1, 0.2),
            Complex64::new(0.3, -0.4),
            Complex64::new(-0.5, 0.6),
            Complex64::new(0.7, 0.8),
        );
        assert!(m.dagger().dagger().approx_eq(&m, 1e-15));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = mat2(
            Complex64::ZERO,
            Complex64::ONE,
            Complex64::ONE,
            Complex64::ZERO,
        );
        let i = UnitaryMatrix::identity(2);
        let xi = x.kron(&i);
        assert_eq!(xi.dim(), 4);
        assert_eq!(xi.num_qubits(), 2);
        // X ⊗ I swaps the upper and lower halves of a 4-vector.
        assert_eq!(xi.get(0, 2), Complex64::ONE);
        assert_eq!(xi.get(1, 3), Complex64::ONE);
        assert_eq!(xi.get(2, 0), Complex64::ONE);
        assert_eq!(xi.get(3, 1), Complex64::ONE);
        assert_eq!(xi.get(0, 0), Complex64::ZERO);
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let m = mat2(
            Complex64::new(0.0, 1.0),
            Complex64::new(2.0, 0.0),
            Complex64::new(0.0, -1.0),
            Complex64::new(1.0, 1.0),
        );
        let i = UnitaryMatrix::identity(2);
        assert!(m.matmul(&i).approx_eq(&m, 1e-15));
        assert!(i.matmul(&m).approx_eq(&m, 1e-15));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn from_rows_rejects_non_square() {
        let _ = UnitaryMatrix::from_rows(vec![Complex64::ZERO; 3]);
    }
}

//! OpenQASM 2.0 reader and writer for the subset of the language used by the
//! QASMBench suite: a single quantum register, the standard-library gates
//! covered by [`crate::gate::GateKind`], and `measure`/`barrier` statements
//! (which carry no simulation semantics here and are skipped).
//!
//! The writer round-trips everything the reader accepts, which the tests use
//! as the parser's main invariant.

use crate::circuit::Circuit;
use crate::gate::{Gate, GateKind};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Errors produced while parsing an OpenQASM 2.0 source.
#[derive(Debug, Clone, PartialEq)]
pub enum QasmError {
    /// A statement could not be understood; carries the line number (1-based)
    /// and a description.
    Parse(usize, String),
    /// A gate referenced a qubit outside any declared register.
    UnknownQubit(usize, String),
    /// A gate name is not supported by this reader.
    UnsupportedGate(usize, String),
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::Parse(line, msg) => write!(f, "line {line}: parse error: {msg}"),
            QasmError::UnknownQubit(line, q) => write!(f, "line {line}: unknown qubit {q}"),
            QasmError::UnsupportedGate(line, g) => {
                write!(f, "line {line}: unsupported gate '{g}'")
            }
        }
    }
}

impl std::error::Error for QasmError {}

/// Parse an OpenQASM 2.0 program into a [`Circuit`].
///
/// Multiple quantum registers are flattened into one contiguous qubit index
/// space in declaration order. Classical registers, `measure`, `barrier`,
/// `reset` and `if` statements are ignored (the simulators in this workspace
/// simulate the pure unitary part of a circuit, as the paper's do).
pub fn parse_qasm(source: &str) -> Result<Circuit, QasmError> {
    let mut registers: Vec<(String, usize)> = Vec::new();
    let mut reg_offset: HashMap<String, usize> = HashMap::new();
    let mut gates: Vec<Gate> = Vec::new();
    let mut total_qubits = 0usize;

    for (lineno, raw_line) in source.lines().enumerate() {
        let lineno = lineno + 1;
        // Strip comments.
        let line = match raw_line.find("//") {
            Some(idx) => &raw_line[..idx],
            None => raw_line,
        };
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let (name, size) = parse_register_decl(rest, lineno)?;
                reg_offset.insert(name.clone(), total_qubits);
                total_qubits += size;
                registers.push((name, size));
                continue;
            }
            if stmt.starts_with("creg")
                || stmt.starts_with("measure")
                || stmt.starts_with("barrier")
                || stmt.starts_with("reset")
                || stmt.starts_with("if")
            {
                continue;
            }
            let gate = parse_gate_statement(stmt, lineno, &reg_offset)?;
            gates.push(gate);
        }
    }

    let name = registers
        .first()
        .map(|(n, _)| n.clone())
        .unwrap_or_else(|| "qasm".to_string());
    let mut circuit = Circuit::named(name, total_qubits);
    for g in gates {
        for &q in &g.qubits {
            if q >= total_qubits {
                return Err(QasmError::UnknownQubit(0, format!("q[{q}]")));
            }
        }
        circuit.push(g);
    }
    Ok(circuit)
}

/// Serialise a circuit to OpenQASM 2.0 using a single register named `q`.
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    for g in circuit.gates() {
        let params = g.kind.params();
        if params.is_empty() {
            let _ = write!(out, "{}", g.kind.name());
        } else {
            let ps: Vec<String> = params.iter().map(|p| format!("{p:.12}")).collect();
            let _ = write!(out, "{}({})", g.kind.name(), ps.join(","));
        }
        let qs: Vec<String> = g.qubits.iter().map(|q| format!("q[{q}]")).collect();
        let _ = writeln!(out, " {};", qs.join(","));
    }
    out
}

fn parse_register_decl(rest: &str, lineno: usize) -> Result<(String, usize), QasmError> {
    let rest = rest.trim();
    let open = rest
        .find('[')
        .ok_or_else(|| QasmError::Parse(lineno, format!("bad register decl '{rest}'")))?;
    let close = rest
        .find(']')
        .ok_or_else(|| QasmError::Parse(lineno, format!("bad register decl '{rest}'")))?;
    let name = rest[..open].trim().to_string();
    let size: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| QasmError::Parse(lineno, format!("bad register size in '{rest}'")))?;
    Ok((name, size))
}

fn parse_gate_statement(
    stmt: &str,
    lineno: usize,
    reg_offset: &HashMap<String, usize>,
) -> Result<Gate, QasmError> {
    // Split "name(params) operands" into name, params, operands.
    let (head, operands_str) = match stmt.find(char::is_whitespace) {
        Some(idx) if !stmt[..idx].contains('(') || stmt[..idx].contains(')') => {
            (&stmt[..idx], &stmt[idx..])
        }
        _ => {
            // The parameter list may contain spaces; find the closing paren.
            match stmt.find(')') {
                Some(close) => (&stmt[..=close], &stmt[close + 1..]),
                None => match stmt.find(char::is_whitespace) {
                    Some(idx) => (&stmt[..idx], &stmt[idx..]),
                    None => {
                        return Err(QasmError::Parse(lineno, format!("bad statement '{stmt}'")))
                    }
                },
            }
        }
    };

    let (name, params) = match head.find('(') {
        Some(open) => {
            let close = head
                .rfind(')')
                .ok_or_else(|| QasmError::Parse(lineno, format!("unclosed '(' in '{head}'")))?;
            let name = head[..open].trim();
            let params: Result<Vec<f64>, QasmError> = head[open + 1..close]
                .split(',')
                .map(|p| parse_angle(p.trim(), lineno))
                .collect();
            (name, params?)
        }
        None => (head.trim(), Vec::new()),
    };

    let qubits: Result<Vec<usize>, QasmError> = operands_str
        .split(',')
        .map(|op| parse_operand(op.trim(), lineno, reg_offset))
        .collect();
    let qubits = qubits?;

    let kind = gate_kind_from_name(name, &params)
        .ok_or_else(|| QasmError::UnsupportedGate(lineno, name.to_string()))?;
    if qubits.len() != kind.arity() {
        return Err(QasmError::Parse(
            lineno,
            format!(
                "gate {} expects {} operands, got {}",
                name,
                kind.arity(),
                qubits.len()
            ),
        ));
    }
    Ok(Gate::new(kind, qubits))
}

fn parse_operand(
    op: &str,
    lineno: usize,
    reg_offset: &HashMap<String, usize>,
) -> Result<usize, QasmError> {
    let open = op
        .find('[')
        .ok_or_else(|| QasmError::Parse(lineno, format!("bad operand '{op}'")))?;
    let close = op
        .find(']')
        .ok_or_else(|| QasmError::Parse(lineno, format!("bad operand '{op}'")))?;
    let reg = op[..open].trim();
    let idx: usize = op[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| QasmError::Parse(lineno, format!("bad qubit index in '{op}'")))?;
    let offset = reg_offset
        .get(reg)
        .ok_or_else(|| QasmError::UnknownQubit(lineno, op.to_string()))?;
    Ok(offset + idx)
}

/// Parse an angle expression: a float literal, optionally involving `pi`
/// (e.g. `pi/2`, `-pi/4`, `2*pi`, `0.5`, `3pi/2`).
fn parse_angle(expr: &str, lineno: usize) -> Result<f64, QasmError> {
    let expr = expr.trim();
    if expr.is_empty() {
        return Err(QasmError::Parse(lineno, "empty angle".into()));
    }
    if let Ok(v) = expr.parse::<f64>() {
        return Ok(v);
    }
    let compact: String = expr.chars().filter(|c| !c.is_whitespace()).collect();

    // Handle the common `a*pi/b`, `pi/b`, `-pi/b`, `a*pi`, `pi` forms.
    let (sign, body) = match compact.strip_prefix('-') {
        Some(rest) => (-1.0, rest.to_string()),
        None => (1.0, compact.clone()),
    };
    let (num_part, den): (String, f64) = match body.split_once('/') {
        Some((n, d)) => {
            let d = d
                .parse::<f64>()
                .map_err(|_| QasmError::Parse(lineno, format!("bad angle '{expr}'")))?;
            (n.to_string(), d)
        }
        None => (body.clone(), 1.0),
    };
    let num = if num_part == "pi" {
        std::f64::consts::PI
    } else if let Some(coeff) = num_part.strip_suffix("*pi") {
        coeff
            .parse::<f64>()
            .map_err(|_| QasmError::Parse(lineno, format!("bad angle '{expr}'")))?
            * std::f64::consts::PI
    } else if let Some(coeff) = num_part.strip_suffix("pi") {
        if coeff.is_empty() {
            std::f64::consts::PI
        } else {
            coeff
                .parse::<f64>()
                .map_err(|_| QasmError::Parse(lineno, format!("bad angle '{expr}'")))?
                * std::f64::consts::PI
        }
    } else {
        num_part
            .parse::<f64>()
            .map_err(|_| QasmError::Parse(lineno, format!("bad angle '{expr}'")))?
    };
    Ok(sign * num / den)
}

fn gate_kind_from_name(name: &str, params: &[f64]) -> Option<GateKind> {
    use GateKind::*;
    let p = |i: usize| params.get(i).copied().unwrap_or(0.0);
    let kind = match name {
        "id" | "i" => I,
        "x" => X,
        "y" => Y,
        "z" => Z,
        "h" => H,
        "s" => S,
        "sdg" => Sdg,
        "t" => T,
        "tdg" => Tdg,
        "sx" => Sx,
        "sxdg" => Sxdg,
        "rx" => Rx(p(0)),
        "ry" => Ry(p(0)),
        "rz" => Rz(p(0)),
        "p" | "u1" => P(p(0)),
        "u2" => U2(p(0), p(1)),
        "u3" | "u" => U3(p(0), p(1), p(2)),
        "cx" | "CX" => Cx,
        "cy" => Cy,
        "cz" => Cz,
        "ch" => Ch,
        "cp" | "cu1" => Cp(p(0)),
        "crx" => Crx(p(0)),
        "cry" => Cry(p(0)),
        "crz" => Crz(p(0)),
        "cu3" => Cu3(p(0), p(1), p(2)),
        "rzz" => Rzz(p(0)),
        "rxx" => Rxx(p(0)),
        "swap" => Swap,
        "ccx" => Ccx,
        "cswap" => Cswap,
        _ => return None,
    };
    Some(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn parses_minimal_program() {
        let src = r#"
            OPENQASM 2.0;
            include "qelib1.inc";
            qreg q[3];
            creg c[3];
            h q[0];
            cx q[0],q[1];
            rz(pi/4) q[2];
            measure q[0] -> c[0];
        "#;
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.gates()[0].kind, GateKind::H);
        assert_eq!(c.gates()[1].kind, GateKind::Cx);
        match c.gates()[2].kind {
            GateKind::Rz(a) => assert!((a - std::f64::consts::FRAC_PI_4).abs() < 1e-12),
            ref other => panic!("expected rz, got {other:?}"),
        }
    }

    #[test]
    fn flattens_multiple_registers() {
        let src = "qreg a[2];\nqreg b[2];\ncx a[1],b[0];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.gates()[0].qubits, vec![1, 2]);
    }

    #[test]
    fn angle_expressions() {
        use std::f64::consts::PI;
        assert!((parse_angle("pi", 1).unwrap() - PI).abs() < 1e-12);
        assert!((parse_angle("-pi/2", 1).unwrap() + PI / 2.0).abs() < 1e-12);
        assert!((parse_angle("3*pi/4", 1).unwrap() - 3.0 * PI / 4.0).abs() < 1e-12);
        assert!((parse_angle("2pi", 1).unwrap() - 2.0 * PI).abs() < 1e-12);
        assert!((parse_angle("0.25", 1).unwrap() - 0.25).abs() < 1e-12);
        assert!(parse_angle("garbage", 1).is_err());
    }

    #[test]
    fn unsupported_gate_is_reported() {
        let src = "qreg q[2];\nfancy q[0];";
        match parse_qasm(src) {
            Err(QasmError::UnsupportedGate(_, name)) => assert_eq!(name, "fancy"),
            other => panic!("expected UnsupportedGate, got {other:?}"),
        }
    }

    #[test]
    fn wrong_operand_count_is_reported() {
        let src = "qreg q[2];\ncx q[0];";
        assert!(matches!(parse_qasm(src), Err(QasmError::Parse(_, _))));
    }

    #[test]
    fn unknown_register_is_reported() {
        let src = "qreg q[2];\nh r[0];";
        assert!(matches!(
            parse_qasm(src),
            Err(QasmError::UnknownQubit(_, _))
        ));
    }

    #[test]
    fn writer_reader_roundtrip_on_generated_circuits() {
        for name in generators::FAMILY_NAMES {
            let original = generators::by_name(name, 8);
            let qasm = to_qasm(&original);
            let parsed = parse_qasm(&qasm).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(parsed.num_qubits(), original.num_qubits(), "{name}");
            assert_eq!(parsed.num_gates(), original.num_gates(), "{name}");
            for (a, b) in original.gates().iter().zip(parsed.gates()) {
                assert_eq!(a.qubits, b.qubits, "{name}");
                assert_eq!(a.kind.name(), b.kind.name(), "{name}");
                let pa = a.kind.params();
                let pb = b.kind.params();
                for (x, y) in pa.iter().zip(pb.iter()) {
                    assert!((x - y).abs() < 1e-9, "{name}: param mismatch {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "// header\nqreg q[1];\n\nh q[0]; // apply H\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }
}

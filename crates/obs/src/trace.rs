//! Span/event recorder with Chrome trace-event JSON export.
//!
//! The recorder is opt-in at runtime (`set_enabled(true)`) and can be
//! compiled out entirely by building `hisvsim-obs` without the `trace`
//! feature, in which case every recording entry point is a no-op and the
//! only cost left in instrumented code is constructing an inert guard.
//!
//! Design notes:
//! - Timestamps come from a process-wide monotonic epoch (`Instant`), so
//!   spans recorded on any thread — including rayon workers and SPMD rank
//!   threads — share one clock and merge into a single timeline.
//! - Each thread appends to its own fixed-capacity ring buffer; when full,
//!   the oldest spans are overwritten and a drop counter is bumped. The
//!   per-thread buffers are registered in a global list so [`drain`] can
//!   collect everything regardless of which threads are still alive.
//! - [`SpanRecord`] is a plain serde-derived struct so worker processes can
//!   ship their buffers back over the wire (`RankReport.spans`) and the
//!   launcher can splice them into its own timeline under a different `pid`.

use serde::{Deserialize, Serialize};

/// One completed span (or instant event, when `dur_us == 0` and the name is
/// recorded via [`instant`]). Fields map onto Chrome trace-event keys.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Event name, e.g. `"plan"`, `"sweep:dense"`, `"alltoallv"`.
    pub name: String,
    /// Category, e.g. `"job"`, `"kernel"`, `"comm"`, `"cluster"`.
    pub cat: String,
    /// Start timestamp in microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Process lane: 0 for the local process, `rank + 1` for worker ranks.
    pub pid: u32,
    /// Thread lane (sequential registration order within a process).
    pub tid: u32,
    /// Free-form detail string, shown under `args.detail` in the viewer.
    pub detail: String,
    /// Payload size for comm events (0 when not applicable).
    pub bytes: u64,
}

impl SpanRecord {
    /// An instant event at `ts_us` with no duration.
    pub fn instant(cat: &str, name: &str, ts_us: u64, detail: String) -> Self {
        SpanRecord {
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us,
            dur_us: 0,
            pid: 0,
            tid: 0,
            detail,
            bytes: 0,
        }
    }
}

/// Render spans as a Chrome trace-event JSON document (the
/// `{"traceEvents": [...]}` object form) suitable for `chrome://tracing`
/// and Perfetto. Spans with a duration become complete (`"X"`) events;
/// zero-duration spans become instant (`"i"`) events.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    use serde::Value;
    let events: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut fields = vec![
                ("name".to_string(), Value::Str(s.name.clone())),
                ("cat".to_string(), Value::Str(s.cat.clone())),
                ("ts".to_string(), Value::Int(s.ts_us as i128)),
                ("pid".to_string(), Value::Int(s.pid as i128)),
                ("tid".to_string(), Value::Int(s.tid as i128)),
            ];
            if s.dur_us > 0 {
                fields.push(("ph".to_string(), Value::Str("X".to_string())));
                fields.push(("dur".to_string(), Value::Int(s.dur_us as i128)));
            } else {
                fields.push(("ph".to_string(), Value::Str("i".to_string())));
                fields.push(("s".to_string(), Value::Str("t".to_string())));
            }
            let mut args = Vec::new();
            if !s.detail.is_empty() {
                args.push(("detail".to_string(), Value::Str(s.detail.clone())));
            }
            if s.bytes > 0 {
                args.push(("bytes".to_string(), Value::Int(s.bytes as i128)));
            }
            if !args.is_empty() {
                fields.push(("args".to_string(), Value::Object(args)));
            }
            Value::Object(fields)
        })
        .collect();
    let doc = Value::Object(vec![("traceEvents".to_string(), Value::Array(events))]);
    // The vendored `Value` has no `Serialize` impl of its own; a transparent
    // newtype bridges it into `serde_json::to_string`.
    struct Raw(Value);
    impl serde::Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&Raw(doc)).expect("trace serialisation cannot fail")
}

#[cfg(feature = "trace")]
mod imp {
    use super::SpanRecord;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// Capacity of each per-thread ring buffer.
    const RING_CAP: usize = 4096;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static NEXT_TID: AtomicU32 = AtomicU32::new(0);
    static DROPPED: AtomicU64 = AtomicU64::new(0);

    struct Ring {
        spans: Vec<SpanRecord>,
        /// Next write position once the ring has wrapped.
        head: usize,
        wrapped: bool,
    }

    impl Ring {
        fn push(&mut self, span: SpanRecord) {
            if self.spans.len() < RING_CAP {
                self.spans.push(span);
            } else {
                self.spans[self.head] = span;
                self.head = (self.head + 1) % RING_CAP;
                self.wrapped = true;
                DROPPED.fetch_add(1, Ordering::Relaxed);
            }
        }

        fn drain(&mut self) -> Vec<SpanRecord> {
            let mut out = if self.wrapped {
                // Restore chronological order: oldest entries start at head.
                let mut v = Vec::with_capacity(self.spans.len());
                v.extend_from_slice(&self.spans[self.head..]);
                v.extend_from_slice(&self.spans[..self.head]);
                v
            } else {
                std::mem::take(&mut self.spans)
            };
            self.spans.clear();
            self.head = 0;
            self.wrapped = false;
            out.shrink_to_fit();
            out
        }
    }

    fn registry() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
        static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static LOCAL: (u32, Arc<Mutex<Ring>>) = {
            let ring = Arc::new(Mutex::new(Ring {
                spans: Vec::new(),
                head: 0,
                wrapped: false,
            }));
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            registry().lock().unwrap().push(Arc::clone(&ring));
            (tid, ring)
        };
    }

    /// Turn recording on or off process-wide. Off by default; the first
    /// enable pins the trace epoch so timestamps start near zero.
    pub fn set_enabled(on: bool) {
        if on {
            EPOCH.get_or_init(Instant::now);
        }
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Microseconds since the trace epoch (pinned at first use).
    #[inline]
    pub fn now_us() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
    }

    /// Number of spans lost to ring-buffer overwrites since startup.
    pub fn dropped() -> u64 {
        DROPPED.load(Ordering::Relaxed)
    }

    /// Record a fully-formed span (used to splice in spans from worker
    /// processes). `tid` is preserved; no-op when recording is disabled.
    pub fn record(span: SpanRecord) {
        if !enabled() {
            return;
        }
        LOCAL.with(|(_, ring)| ring.lock().unwrap().push(span));
    }

    /// Record an instant event on the calling thread.
    pub fn instant(cat: &str, name: &str, detail: impl Into<String>) {
        if !enabled() {
            return;
        }
        LOCAL.with(|(tid, ring)| {
            let mut span = SpanRecord::instant(cat, name, now_us(), detail.into());
            span.tid = *tid;
            ring.lock().unwrap().push(span);
        });
    }

    /// RAII guard that records a complete span on drop. Created armed only
    /// if recording was enabled at construction time.
    pub struct SpanGuard {
        start_us: u64,
        name: &'static str,
        cat: &'static str,
        detail: String,
        bytes: u64,
        armed: bool,
    }

    impl SpanGuard {
        /// Attach a detail string shown under `args.detail`.
        pub fn detail(mut self, detail: impl Into<String>) -> Self {
            if self.armed {
                self.detail = detail.into();
            }
            self
        }

        /// Attach a byte count (for comm spans).
        pub fn bytes(mut self, bytes: u64) -> Self {
            self.bytes = bytes;
            self
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            if !self.armed {
                return;
            }
            let end = now_us();
            LOCAL.with(|(tid, ring)| {
                ring.lock().unwrap().push(SpanRecord {
                    name: self.name.to_string(),
                    cat: self.cat.to_string(),
                    ts_us: self.start_us,
                    dur_us: end.saturating_sub(self.start_us).max(1),
                    pid: 0,
                    tid: *tid,
                    detail: std::mem::take(&mut self.detail),
                    bytes: self.bytes,
                });
            });
        }
    }

    /// Open a span; it records itself when the guard drops.
    #[inline]
    pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
        let armed = enabled();
        SpanGuard {
            start_us: if armed { now_us() } else { 0 },
            name,
            cat,
            detail: String::new(),
            bytes: 0,
            armed,
        }
    }

    /// Collect and clear every thread's buffered spans, sorted by start
    /// time. Spans from threads that have exited are still collected (their
    /// rings stay registered).
    pub fn drain() -> Vec<SpanRecord> {
        // Touch the local ring so the draining thread is registered too.
        LOCAL.with(|_| {});
        let rings: Vec<Arc<Mutex<Ring>>> = registry().lock().unwrap().clone();
        let mut out = Vec::new();
        for ring in rings {
            out.extend(ring.lock().unwrap().drain());
        }
        out.sort_by_key(|s| (s.ts_us, s.tid));
        out
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::SpanRecord;

    /// No-op: the `trace` feature is disabled.
    pub fn set_enabled(_on: bool) {}

    /// Always false without the `trace` feature.
    #[inline]
    pub fn enabled() -> bool {
        false
    }

    /// Always 0 without the `trace` feature.
    #[inline]
    pub fn now_us() -> u64 {
        0
    }

    /// Always 0 without the `trace` feature.
    pub fn dropped() -> u64 {
        0
    }

    /// No-op: the span is discarded.
    pub fn record(_span: SpanRecord) {}

    /// No-op: the event is discarded.
    pub fn instant(_cat: &str, _name: &str, _detail: impl Into<String>) {}

    /// Inert guard; all builder methods are no-ops.
    pub struct SpanGuard;

    impl SpanGuard {
        /// No-op.
        pub fn detail(self, _detail: impl Into<String>) -> Self {
            self
        }

        /// No-op.
        pub fn bytes(self, _bytes: u64) -> Self {
            self
        }
    }

    /// Returns an inert guard.
    #[inline]
    pub fn span(_cat: &'static str, _name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// Always empty without the `trace` feature.
    pub fn drain() -> Vec<SpanRecord> {
        Vec::new()
    }
}

pub use imp::{drain, dropped, enabled, instant, now_us, record, set_enabled, span, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "trace")]
    #[test]
    fn spans_are_recorded_when_enabled() {
        set_enabled(true);
        let _ = drain(); // discard anything from sibling tests
        {
            let _g = span("test", "outer").detail("d1");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        instant("test", "marker", "m");
        let spans = drain();
        set_enabled(false);
        let outer = spans
            .iter()
            .find(|s| s.name == "outer")
            .expect("outer span");
        assert_eq!(outer.cat, "test");
        assert_eq!(outer.detail, "d1");
        assert!(outer.dur_us >= 1);
        assert!(spans.iter().any(|s| s.name == "marker" && s.dur_us == 0));
    }

    #[cfg(feature = "trace")]
    #[test]
    fn disabled_recorder_discards_spans() {
        set_enabled(false);
        let _ = drain();
        {
            let _g = span("test", "ghost");
        }
        instant("test", "ghost2", "");
        assert!(drain().iter().all(|s| !s.name.starts_with("ghost")));
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn feature_off_compiles_to_noops() {
        set_enabled(true);
        assert!(!enabled());
        {
            let _g = span("test", "never").detail("x").bytes(9);
        }
        instant("test", "never2", "y");
        record(SpanRecord::instant("test", "never3", 0, String::new()));
        assert!(drain().is_empty());
        assert_eq!(now_us(), 0);
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn chrome_trace_export_is_well_formed() {
        let spans = vec![
            SpanRecord {
                name: "plan".into(),
                cat: "job".into(),
                ts_us: 10,
                dur_us: 100,
                pid: 0,
                tid: 0,
                detail: "qft-4".into(),
                bytes: 0,
            },
            SpanRecord::instant("bench", "progress", 200, "hello".into()),
        ];
        let json = chrome_trace_json(&spans);
        let v = serde_json::value_from_str(&json).expect("valid JSON");
        let events = v
            .get_field("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get_field("ph").and_then(|p| p.as_str()),
            Some("X")
        );
        assert_eq!(
            events[1].get_field("ph").and_then(|p| p.as_str()),
            Some("i")
        );
    }

    #[test]
    fn span_record_round_trips_through_serde() {
        let span = SpanRecord {
            name: "alltoallv".into(),
            cat: "comm".into(),
            ts_us: 42,
            dur_us: 7,
            pid: 3,
            tid: 1,
            detail: "rank 2".into(),
            bytes: 4096,
        };
        let text = serde_json::to_string(&span).unwrap();
        let back: SpanRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(span, back);
    }
}

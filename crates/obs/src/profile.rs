//! Measured-cost profiles: the calibration substrate that turns the span
//! recorder from a passive log into an input for placement decisions.
//!
//! A [`CostProfile`] aggregates drained [`SpanRecord`]s (and directly
//! reported phase timings) into three tables:
//!
//! - **kernels** — per sweep-kernel effective bandwidth, keyed by kernel
//!   name (`sweep:dense`, `sweep:solo`, `sweep:diagonal`, `sweep:tiled`),
//!   dispatch (`scalar`, `avx2`, …) and qubit band (`log2` of the swept
//!   amplitude count);
//! - **collectives** — per collective (`alltoallv`, `recv`) effective
//!   bandwidth over the bytes actually moved;
//! - **phases** — per (engine, phase) wall-second totals from the job
//!   runner's always-on timeline.
//!
//! Profiles are plain serde structs: JSON-persistable next to the
//! plan-cache snapshot, and mergeable across runs and ranks (workers ship
//! their deltas back in `RankReport.profile`; [`CostProfile::merge`] folds
//! them in). The derived signals ([`CostProfile::cache_qubits`],
//! [`CostProfile::exchange_seconds`], [`CostProfile::pass_cost`],
//! [`CostProfile::sustained_gbps`]) each return `Option` — `None` means
//! "not enough measured data, fall back to the model", so a cold profile
//! reproduces the uncalibrated behaviour exactly.
//!
//! **Safety invariant:** nothing in this module ever touches amplitude
//! math. A profile may change *which* engine or fusion strategy runs; the
//! fused forms any engine executes remain pure functions of
//! (circuit, width, resolved strategy). [`ProfileMode::Frozen`] pins the
//! consulted profile so the *decisions* are reproducible too.

use crate::trace::SpanRecord;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// Current on-disk profile format version.
pub const PROFILE_VERSION: u32 = 1;

/// Qubit bands below this are too small for a sweep's wall time to say
/// anything about memory-system behaviour (microsecond timings, cache
/// warm-up noise); the cache-size cliff detector ignores them.
const MIN_CALIBRATION_BAND: u32 = 16;

/// A band's measurements must cover at least this many bytes before the
/// cliff detector trusts its bandwidth figure.
const MIN_BAND_BYTES: u64 = 1 << 20;

/// Bandwidth dropping below this fraction of the running small-band peak
/// marks the cache-residency cliff.
const CLIFF_RATIO: f64 = 0.6;

/// Aggregated cost of one sweep kernel at one (dispatch, qubit band) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCost {
    /// Kernel name as recorded by the sweep span (`sweep:dense`, …).
    pub kernel: String,
    /// Dispatch the sweeps ran under (`scalar`, `avx2`, …).
    pub dispatch: String,
    /// `log2` of the swept amplitude count.
    pub band: u32,
    /// Number of sweeps folded into this cell.
    pub sweeps: u64,
    /// Total wall seconds across those sweeps.
    pub seconds: f64,
    /// Total bytes read + written across those sweeps.
    pub bytes: u64,
}

impl KernelCost {
    /// Effective bandwidth of this cell in GB/s.
    pub fn gbps(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes as f64 / self.seconds / 1e9
        } else {
            0.0
        }
    }
}

/// Aggregated cost of one collective operation kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveCost {
    /// Collective name as recorded by the comm span (`alltoallv`, `recv`).
    pub collective: String,
    /// Number of operations folded in.
    pub ops: u64,
    /// Total wall seconds across those operations.
    pub seconds: f64,
    /// Total payload bytes across those operations.
    pub bytes: u64,
}

impl CollectiveCost {
    /// Effective bandwidth of this collective in bytes per second
    /// (latency amortised in).
    pub fn bytes_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// Aggregated wall time of one (engine, phase) pair from job timelines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Engine name (`baseline`, `hier`, `dist`, `multilevel`).
    pub engine: String,
    /// Phase name (`plan`, `execute`, `postprocess`).
    pub phase: String,
    /// Number of jobs folded in.
    pub count: u64,
    /// Total wall seconds across those jobs.
    pub seconds: f64,
    /// Total amplitude bytes the phase worked over (0 when unknown).
    pub bytes: u64,
}

/// Measured costs aggregated from spans and phase timings — the persisted,
/// mergeable unit of calibration data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    /// On-disk format version ([`PROFILE_VERSION`]).
    pub version: u32,
    /// Per-kernel cells, kept sorted by (kernel, dispatch, band).
    pub kernels: Vec<KernelCost>,
    /// Per-collective cells, kept sorted by name.
    pub collectives: Vec<CollectiveCost>,
    /// Per-(engine, phase) cells, kept sorted by (engine, phase).
    pub phases: Vec<PhaseCost>,
}

impl Default for CostProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl CostProfile {
    /// An empty (cold) profile.
    pub fn new() -> Self {
        CostProfile {
            version: PROFILE_VERSION,
            kernels: Vec::new(),
            collectives: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Whether any measurement has been absorbed.
    pub fn is_warm(&self) -> bool {
        !self.kernels.is_empty() || !self.collectives.is_empty() || !self.phases.is_empty()
    }

    /// Fold a batch of drained spans in. Kernel sweep spans (category
    /// `kernel`, name `sweep:*`, amplitude bytes attached) land in the
    /// kernel table under `dispatch`; comm spans (`alltoallv`, `recv`)
    /// land in the collective table. Spans without a byte count carry no
    /// bandwidth information and are skipped. Reads the slice without
    /// consuming it, so the same spans can still be exported as a trace.
    pub fn absorb_spans(&mut self, spans: &[SpanRecord], dispatch: &str) {
        for span in spans {
            if span.bytes == 0 || span.dur_us == 0 {
                continue;
            }
            let seconds = span.dur_us as f64 / 1e6;
            if span.cat == "kernel" && span.name.starts_with("sweep:") {
                let amps = span.bytes / 32;
                if amps == 0 {
                    continue;
                }
                let band = 63 - amps.leading_zeros();
                self.absorb_kernel(&span.name, dispatch, band, 1, seconds, span.bytes);
            } else if span.cat == "comm" && (span.name == "alltoallv" || span.name == "recv") {
                self.absorb_collective(&span.name, 1, seconds, span.bytes);
            }
        }
    }

    /// Fold one kernel measurement in directly (used by the microbench's
    /// `--profile-out` path as well as [`CostProfile::absorb_spans`]).
    pub fn absorb_kernel(
        &mut self,
        kernel: &str,
        dispatch: &str,
        band: u32,
        sweeps: u64,
        seconds: f64,
        bytes: u64,
    ) {
        if let Some(cell) = self
            .kernels
            .iter_mut()
            .find(|k| k.kernel == kernel && k.dispatch == dispatch && k.band == band)
        {
            cell.sweeps += sweeps;
            cell.seconds += seconds;
            cell.bytes += bytes;
        } else {
            self.kernels.push(KernelCost {
                kernel: kernel.to_string(),
                dispatch: dispatch.to_string(),
                band,
                sweeps,
                seconds,
                bytes,
            });
            self.kernels.sort_by(|a, b| {
                (&a.kernel, &a.dispatch, a.band).cmp(&(&b.kernel, &b.dispatch, b.band))
            });
        }
    }

    /// Fold one collective measurement in directly.
    pub fn absorb_collective(&mut self, collective: &str, ops: u64, seconds: f64, bytes: u64) {
        if let Some(cell) = self
            .collectives
            .iter_mut()
            .find(|c| c.collective == collective)
        {
            cell.ops += ops;
            cell.seconds += seconds;
            cell.bytes += bytes;
        } else {
            self.collectives.push(CollectiveCost {
                collective: collective.to_string(),
                ops,
                seconds,
                bytes,
            });
            self.collectives
                .sort_by(|a, b| a.collective.cmp(&b.collective));
        }
    }

    /// Fold one job phase's wall time in (`bytes` = amplitude bytes the
    /// phase worked over, 0 when unknown).
    pub fn absorb_phase(&mut self, engine: &str, phase: &str, seconds: f64, bytes: u64) {
        if let Some(cell) = self
            .phases
            .iter_mut()
            .find(|p| p.engine == engine && p.phase == phase)
        {
            cell.count += 1;
            cell.seconds += seconds;
            cell.bytes += bytes;
        } else {
            self.phases.push(PhaseCost {
                engine: engine.to_string(),
                phase: phase.to_string(),
                count: 1,
                seconds,
                bytes,
            });
            self.phases
                .sort_by(|a, b| (&a.engine, &a.phase).cmp(&(&b.engine, &b.phase)));
        }
    }

    /// Fold another profile's cells into this one (cell-wise sum). Used to
    /// merge worker deltas into the launcher's profile and a persisted
    /// profile into a live store; commutative and associative over the
    /// aggregated sums.
    pub fn merge(&mut self, other: &CostProfile) {
        for k in &other.kernels {
            self.absorb_kernel(&k.kernel, &k.dispatch, k.band, k.sweeps, k.seconds, k.bytes);
        }
        for c in &other.collectives {
            self.absorb_collective(&c.collective, c.ops, c.seconds, c.bytes);
        }
        for p in &other.phases {
            if let Some(cell) = self
                .phases
                .iter_mut()
                .find(|q| q.engine == p.engine && q.phase == p.phase)
            {
                cell.count += p.count;
                cell.seconds += p.seconds;
                cell.bytes += p.bytes;
            } else {
                self.phases.push(p.clone());
                self.phases
                    .sort_by(|a, b| (&a.engine, &a.phase).cmp(&(&b.engine, &b.phase)));
            }
        }
    }

    /// Measured effective bandwidth of `kernel` at `band` in GB/s, across
    /// all dispatches (bytes-weighted).
    pub fn kernel_gbps(&self, kernel: &str, band: u32) -> Option<f64> {
        let (bytes, seconds) = self
            .kernels
            .iter()
            .filter(|k| k.kernel == kernel && k.band == band)
            .fold((0u64, 0.0f64), |(b, s), k| (b + k.bytes, s + k.seconds));
        if seconds > 0.0 && bytes > 0 {
            Some(bytes as f64 / seconds / 1e9)
        } else {
            None
        }
    }

    /// Bytes-weighted sustained sweep bandwidth in GB/s over every kernel
    /// cell, or `None` with fewer than ~1 MiB of measured traffic.
    pub fn sustained_gbps(&self) -> Option<f64> {
        let (bytes, seconds) = self
            .kernels
            .iter()
            .fold((0u64, 0.0f64), |(b, s), k| (b + k.bytes, s + k.seconds));
        if seconds > 0.0 && bytes >= MIN_BAND_BYTES {
            Some(bytes as f64 / seconds / 1e9)
        } else {
            None
        }
    }

    /// The measured cache-residency cliff: the largest qubit band whose
    /// sweeps still run at near-peak bandwidth. Walks the per-band
    /// bandwidths (bands ≥ 16 qubits with ≥ 1 MiB of traffic; at least
    /// three such bands required) and reports the band just below the
    /// first drop under [`CLIFF_RATIO`] × the running peak. `None` when
    /// the data shows no cliff — the modelled `cache_qubits` stands.
    pub fn cache_qubits(&self) -> Option<u32> {
        let mut bands: Vec<u32> = self
            .kernels
            .iter()
            .filter(|k| k.band >= MIN_CALIBRATION_BAND)
            .map(|k| k.band)
            .collect();
        bands.sort_unstable();
        bands.dedup();
        let cells: Vec<(u32, f64)> = bands
            .into_iter()
            .filter_map(|band| {
                let (bytes, seconds) = self
                    .kernels
                    .iter()
                    .filter(|k| k.band == band)
                    .fold((0u64, 0.0f64), |(b, s), k| (b + k.bytes, s + k.seconds));
                (bytes >= MIN_BAND_BYTES && seconds > 0.0)
                    .then(|| (band, bytes as f64 / seconds / 1e9))
            })
            .collect();
        if cells.len() < 3 {
            return None;
        }
        let mut peak = cells[0].1;
        for window in cells.windows(2) {
            let (_, prev_gbps) = window[0];
            let (band, gbps) = window[1];
            peak = peak.max(prev_gbps);
            if gbps < CLIFF_RATIO * peak {
                return Some(band - 1);
            }
        }
        None
    }

    /// Predicted wall seconds to move `bytes` through the measured
    /// collective path (effective bandwidth with latency amortised in).
    /// `None` below ~64 KiB of measured collective traffic.
    pub fn exchange_seconds(&self, bytes: usize) -> Option<f64> {
        let (total_bytes, seconds) = self
            .collectives
            .iter()
            .filter(|c| c.collective == "alltoallv" || c.collective == "recv")
            .fold((0u64, 0.0f64), |(b, s), c| (b + c.bytes, s + c.seconds));
        if seconds > 0.0 && total_bytes >= 1 << 16 {
            Some(bytes as f64 * seconds / total_bytes as f64)
        } else {
            None
        }
    }

    /// The measured memory-pass cost in the fusion cost model's units
    /// (the static model pins it at 2.0). Derived from the per-amplitude
    /// wall-time ratio `r` between dense two-qubit-class sweeps
    /// (modelled `pass + 4`) and diagonal runs (modelled `pass + 1`):
    /// `pass = (4 - r) / (r - 1)`, clamped to `[0.5, 16]`. A coarse,
    /// deliberately stable estimate — it only ever adjudicates the
    /// window-vs-DAG `Auto` comparison, never the executed fused forms.
    pub fn pass_cost(&self) -> Option<f64> {
        let per_amp = |kernel: &str| -> Option<f64> {
            let (bytes, seconds) = self
                .kernels
                .iter()
                .filter(|k| k.kernel == kernel)
                .fold((0u64, 0.0f64), |(b, s), k| (b + k.bytes, s + k.seconds));
            let amps = bytes / 32;
            (amps >= 1 << 12 && seconds > 0.0).then(|| seconds / amps as f64)
        };
        let dense = per_amp("sweep:dense")?;
        let diagonal = per_amp("sweep:diagonal")?;
        if diagonal <= 0.0 {
            return None;
        }
        let r = dense / diagonal;
        let pass = if r > 1.0 { (4.0 - r) / (r - 1.0) } else { 16.0 };
        Some(pass.clamp(0.5, 16.0))
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialisation cannot fail")
    }

    /// Parse a profile from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let profile: CostProfile = serde_json::from_str(text).map_err(|e| e.to_string())?;
        if profile.version != PROFILE_VERSION {
            return Err(format!(
                "unsupported profile version {} (expected {PROFILE_VERSION})",
                profile.version
            ));
        }
        Ok(profile)
    }

    /// Write the profile as JSON to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a profile from a JSON file.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Self::from_json(&text)
    }
}

/// How a [`ProfileStore`] treats new measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileMode {
    /// Absorb every measurement; decisions calibrate as data accumulates.
    Adaptive,
    /// The profile is read-only: decisions stay reproducible because the
    /// consulted data never changes mid-run. Absorb calls are no-ops.
    Frozen,
}

/// Shared, thread-safe holder of a [`CostProfile`] plus its
/// [`ProfileMode`]. One store is injected per scheduler configuration (no
/// process-global state), so tests and co-resident services never leak
/// calibration into each other.
#[derive(Debug)]
pub struct ProfileStore {
    frozen: AtomicBool,
    profile: RwLock<CostProfile>,
}

impl Default for ProfileStore {
    fn default() -> Self {
        Self::new(ProfileMode::Adaptive)
    }
}

impl ProfileStore {
    /// An empty store in the given mode.
    pub fn new(mode: ProfileMode) -> Self {
        ProfileStore {
            frozen: AtomicBool::new(mode == ProfileMode::Frozen),
            profile: RwLock::new(CostProfile::new()),
        }
    }

    /// A store pre-seeded with `profile`.
    pub fn with_profile(mode: ProfileMode, profile: CostProfile) -> Self {
        ProfileStore {
            frozen: AtomicBool::new(mode == ProfileMode::Frozen),
            profile: RwLock::new(profile),
        }
    }

    /// The store's current mode.
    pub fn mode(&self) -> ProfileMode {
        if self.frozen.load(Ordering::Relaxed) {
            ProfileMode::Frozen
        } else {
            ProfileMode::Adaptive
        }
    }

    /// Switch modes (freezing pins the profile as-is).
    pub fn set_mode(&self, mode: ProfileMode) {
        self.frozen
            .store(mode == ProfileMode::Frozen, Ordering::Relaxed);
    }

    /// Whether the held profile has any measurements.
    pub fn warm(&self) -> bool {
        self.profile.read().unwrap().is_warm()
    }

    /// A point-in-time copy of the held profile.
    pub fn snapshot(&self) -> CostProfile {
        self.profile.read().unwrap().clone()
    }

    /// Absorb drained spans (no-op when frozen). See
    /// [`CostProfile::absorb_spans`].
    pub fn absorb_spans(&self, spans: &[SpanRecord], dispatch: &str) {
        if self.mode() == ProfileMode::Frozen {
            return;
        }
        self.profile.write().unwrap().absorb_spans(spans, dispatch);
    }

    /// Absorb one job phase's wall time (no-op when frozen).
    pub fn absorb_phase(&self, engine: &str, phase: &str, seconds: f64, bytes: u64) {
        if self.mode() == ProfileMode::Frozen {
            return;
        }
        self.profile
            .write()
            .unwrap()
            .absorb_phase(engine, phase, seconds, bytes);
    }

    /// Merge another profile in (no-op when frozen). Used for worker
    /// deltas and persisted-profile warm starts.
    pub fn merge(&self, other: &CostProfile) {
        if self.mode() == ProfileMode::Frozen {
            return;
        }
        self.profile.write().unwrap().merge(other);
    }

    /// Merge a persisted profile from `path` into the store, regardless of
    /// mode (loading *is* how a frozen store gets its pinned data).
    /// Returns whether the file existed and parsed.
    pub fn load_from(&self, path: &Path) -> Result<bool, String> {
        if !path.exists() {
            return Ok(false);
        }
        let loaded = CostProfile::load(path)?;
        self.profile.write().unwrap().merge(&loaded);
        Ok(true)
    }

    /// Persist the held profile as JSON to `path`.
    pub fn save_to(&self, path: &Path) -> std::io::Result<()> {
        self.profile.read().unwrap().save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_span(name: &str, dur_us: u64, amps: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "kernel".into(),
            ts_us: 0,
            dur_us,
            pid: 0,
            tid: 0,
            detail: String::new(),
            bytes: amps * 32,
        }
    }

    fn comm_span(name: &str, dur_us: u64, bytes: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "comm".into(),
            ts_us: 0,
            dur_us,
            pid: 0,
            tid: 0,
            detail: String::new(),
            bytes,
        }
    }

    #[test]
    fn absorb_spans_bands_kernels_and_collectives() {
        let mut profile = CostProfile::new();
        let spans = vec![
            sweep_span("sweep:dense", 100, 1 << 20),
            sweep_span("sweep:dense", 100, 1 << 20),
            sweep_span("sweep:diagonal", 50, 1 << 18),
            comm_span("alltoallv", 200, 1 << 22),
            comm_span("barrier", 10, 0), // no bytes: skipped
        ];
        profile.absorb_spans(&spans, "avx2");
        assert_eq!(profile.kernels.len(), 2);
        let dense = &profile.kernels[0];
        assert_eq!(
            (dense.kernel.as_str(), dense.dispatch.as_str(), dense.band),
            ("sweep:dense", "avx2", 20)
        );
        assert_eq!(dense.sweeps, 2);
        assert_eq!(dense.bytes, 2 * (1u64 << 20) * 32);
        assert_eq!(profile.collectives.len(), 1);
        assert_eq!(profile.collectives[0].ops, 1);
        assert!(profile.is_warm());
    }

    #[test]
    fn cache_qubits_finds_the_bandwidth_cliff() {
        let mut profile = CostProfile::new();
        // Near-peak through band 21, cliff at 22: sized so bytes/seconds
        // gives ~100, ~95, ~90 GB/s then ~40 GB/s.
        for (band, gbps) in [(19u32, 100.0), (20, 95.0), (21, 90.0), (22, 40.0)] {
            let bytes = 64u64 << band;
            profile.absorb_kernel(
                "sweep:dense",
                "avx2",
                band,
                1,
                bytes as f64 / (gbps * 1e9),
                bytes,
            );
        }
        assert_eq!(profile.cache_qubits(), Some(21));
    }

    #[test]
    fn cache_qubits_needs_enough_bands_and_ignores_tiny_ones() {
        let mut profile = CostProfile::new();
        // Plenty of small-band cells: all below the calibration floor.
        for band in [6u32, 8, 10, 12] {
            profile.absorb_kernel("sweep:dense", "scalar", band, 10, 0.5, 4 << 20);
        }
        assert_eq!(profile.cache_qubits(), None);
        // Two qualifying bands are still not enough to call a cliff.
        profile.absorb_kernel("sweep:dense", "avx2", 18, 1, 0.01, 64 << 18);
        profile.absorb_kernel("sweep:dense", "avx2", 20, 1, 0.10, 64 << 20);
        assert_eq!(profile.cache_qubits(), None);
    }

    #[test]
    fn exchange_model_scales_with_bytes() {
        let mut profile = CostProfile::new();
        profile.absorb_collective("alltoallv", 4, 0.1, 1 << 28);
        let t1 = profile.exchange_seconds(1 << 20).unwrap();
        let t2 = profile.exchange_seconds(1 << 21).unwrap();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // Effective bandwidth: 2^28 bytes / 0.1 s.
        let expected = (1u64 << 20) as f64 * 0.1 / (1u64 << 28) as f64;
        assert!((t1 - expected).abs() < 1e-12);
    }

    #[test]
    fn pass_cost_inverts_the_static_model() {
        let mut profile = CostProfile::new();
        // Build per-amp times with ratio r = 2 => pass = (4-2)/(2-1) = 2.0.
        let amps = 1u64 << 20;
        profile.absorb_kernel("sweep:dense", "avx2", 20, 1, 2e-3, amps * 32);
        profile.absorb_kernel("sweep:diagonal", "avx2", 20, 1, 1e-3, amps * 32);
        let pass = profile.pass_cost().unwrap();
        assert!((pass - 2.0).abs() < 1e-9, "pass = {pass}");
        // Dense no slower than diagonal per amp: clamps to the ceiling.
        let mut flat = CostProfile::new();
        flat.absorb_kernel("sweep:dense", "avx2", 20, 1, 1e-3, amps * 32);
        flat.absorb_kernel("sweep:diagonal", "avx2", 20, 1, 1e-3, amps * 32);
        assert_eq!(flat.pass_cost(), Some(16.0));
    }

    #[test]
    fn merge_is_cellwise_sum_and_json_round_trips_exactly() {
        let mut a = CostProfile::new();
        a.absorb_kernel("sweep:dense", "avx2", 20, 3, 0.25, 96 << 20);
        a.absorb_phase("hier", "execute", 0.125, 1 << 24);
        let mut b = CostProfile::new();
        b.absorb_kernel("sweep:dense", "avx2", 20, 1, 0.75, 32 << 20);
        b.absorb_kernel("sweep:solo", "scalar", 18, 2, 0.5, 16 << 18);
        b.absorb_collective("recv", 5, 0.01, 1 << 20);
        b.absorb_phase("hier", "execute", 0.375, 1 << 24);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is order-independent");
        assert_eq!(ab.kernels[0].sweeps, 4);
        assert_eq!(ab.kernels[0].seconds, 1.0);
        assert_eq!(ab.phases[0].count, 2);

        let back = CostProfile::from_json(&ab.to_json()).unwrap();
        assert_eq!(ab, back, "f64 JSON round-trip is exact");
    }

    #[test]
    fn frozen_store_never_mutates() {
        let store = ProfileStore::new(ProfileMode::Frozen);
        store.absorb_phase("hier", "execute", 1.0, 0);
        store.absorb_spans(&[sweep_span("sweep:dense", 10, 1 << 16)], "scalar");
        let mut delta = CostProfile::new();
        delta.absorb_kernel("sweep:dense", "avx2", 20, 1, 0.1, 32 << 20);
        store.merge(&delta);
        assert!(!store.warm());
        store.set_mode(ProfileMode::Adaptive);
        store.merge(&delta);
        assert!(store.warm());
    }
}

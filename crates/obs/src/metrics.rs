//! Unified metrics registry with Prometheus text exposition.
//!
//! A [`Registry`] holds named counters, gauges, and fixed-bucket log-scale
//! histograms. Handles are cheap `Arc` clones safe to update from any
//! thread; [`Registry::render`] produces the Prometheus text format and
//! [`validate_prometheus`] is a strict parser used by the test suite to
//! keep the exposition well-formed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram bucket upper bounds: `1e-6 * 4^i` for `i = 0..16`, spanning
/// 1 µs to ~1073 s — wide enough for kernel sweeps and whole-job wall times
/// with one fixed layout. A `+Inf` bucket is implicit.
pub const BUCKET_BOUNDS: [f64; 16] = [
    1e-6,
    4e-6,
    1.6e-5,
    6.4e-5,
    2.56e-4,
    1.024e-3,
    4.096e-3,
    1.6384e-2,
    6.5536e-2,
    2.62144e-1,
    1.048576,
    4.194304,
    16.777216,
    67.108864,
    268.435456,
    1073.741824,
];

fn f64_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(cur) + v;
        match cell.compare_exchange_weak(cur, next.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Monotonically increasing counter (f64-valued so it can carry seconds).
#[derive(Debug, Default)]
pub struct Counter {
    bits: AtomicU64,
}

impl Counter {
    /// Increment by 1.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Increment by `v` (must be non-negative to keep the series monotone).
    pub fn add(&self, v: f64) {
        f64_add(&self.bits, v);
    }

    /// Overwrite the value. Intended for syncing from an external monotonic
    /// source (e.g. an `AtomicU64` kept by older code) at scrape time.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Instantaneous value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Histogram with the fixed log-scale [`BUCKET_BOUNDS`] layout.
#[derive(Debug)]
pub struct Histogram {
    /// One count per bound, plus a final `+Inf` slot.
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_bits: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = BUCKET_BOUNDS
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        f64_add(&self.sum_bits, v);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// One counter per label set, keyed by the rendered label block
    /// (`{code="200",endpoint="/metrics"}`) so each set is a distinct series.
    CounterFamily(BTreeMap<String, Arc<Counter>>),
}

/// Render a label set as a Prometheus label block with keys sorted for a
/// stable series identity regardless of caller order.
fn label_block(labels: &[(&str, &str)]) -> String {
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by_key(|(k, _)| *k);
    let body = pairs
        .iter()
        .map(|(k, v)| {
            let escaped = v
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n");
            format!("{k}=\"{escaped}\"")
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

struct Entry {
    help: String,
    metric: Metric,
}

/// A shared, thread-safe collection of named metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`. Panics if `name` is already
    /// registered as a different metric type.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Counter(Arc::new(Counter::default())),
        });
        match &entry.metric {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Get or create the counter for one label set of the labeled family
    /// `name`. All label sets of a family share one HELP/TYPE declaration
    /// and render as separate series. Panics if `name` is already
    /// registered as a non-family metric.
    pub fn labeled_counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let block = label_block(labels);
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::CounterFamily(BTreeMap::new()),
        });
        match &mut entry.metric {
            Metric::CounterFamily(family) => Arc::clone(
                family
                    .entry(block)
                    .or_insert_with(|| Arc::new(Counter::default())),
            ),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Gauge(Arc::new(Gauge::default())),
        });
        match &entry.metric {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::default())),
        });
        match &entry.metric {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    /// Render every registered metric in Prometheus text exposition format,
    /// sorted by metric name.
    pub fn render(&self) -> String {
        let map = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, entry) in map.iter() {
            let kind = match &entry.metric {
                Metric::Counter(_) | Metric::CounterFamily(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {name} {}\n", entry.help));
            out.push_str(&format!("# TYPE {name} {kind}\n"));
            match &entry.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{name} {}\n", fmt_value(c.get())));
                }
                Metric::CounterFamily(family) => {
                    for (block, c) in family.iter() {
                        out.push_str(&format!("{name}{block} {}\n", fmt_value(c.get())));
                    }
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{name} {}\n", fmt_value(g.get())));
                }
                Metric::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bound) in BUCKET_BOUNDS.iter().enumerate() {
                        cumulative += h.buckets[i].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            fmt_value(*bound)
                        ));
                    }
                    cumulative += h.buckets[BUCKET_BOUNDS.len()].load(Ordering::Relaxed);
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                    out.push_str(&format!("{name}_sum {}\n", fmt_value(h.sum())));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                }
            }
        }
        out
    }
}

/// Format a value the way Prometheus clients conventionally do: integers
/// without a fractional part, floats with enough digits to round-trip.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let mut s = format!("{v}");
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
            s.push_str(".0");
        }
        s
    }
}

/// Strictly validate a Prometheus text exposition. Checks:
/// - every `# HELP` is followed by a matching `# TYPE` for the same metric;
/// - each metric has HELP/TYPE exactly once;
/// - every sample line belongs to the most recently declared metric
///   (histograms may append `_bucket`/`_sum`/`_count`);
/// - no duplicate series (same name + label set);
/// - histogram buckets have strictly increasing `le` bounds, cumulative
///   non-decreasing counts, a terminal `+Inf` bucket whose count equals
///   `_count`, and both `_sum` and `_count` samples.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut declared: BTreeMap<String, String> = BTreeMap::new(); // name -> type
    let mut help_seen: BTreeMap<String, bool> = BTreeMap::new();
    let mut series_seen: Vec<String> = Vec::new();
    let mut current: Option<(String, String)> = None; // (name, type)

    // Per-histogram running state.
    let mut hist_prev_le: f64 = f64::NEG_INFINITY;
    let mut hist_prev_count: u64 = 0;
    let mut hist_inf_count: Option<u64> = None;
    let mut hist_sum_seen = false;
    let mut hist_count_val: Option<u64> = None;

    let finish_histogram = |name: &str,
                            inf: &Option<u64>,
                            sum_seen: bool,
                            count_val: &Option<u64>|
     -> Result<(), String> {
        if inf.is_none() {
            return Err(format!("histogram `{name}` missing +Inf bucket"));
        }
        if !sum_seen {
            return Err(format!("histogram `{name}` missing _sum"));
        }
        match count_val {
            None => return Err(format!("histogram `{name}` missing _count")),
            Some(c) => {
                if Some(*c) != *inf {
                    return Err(format!(
                        "histogram `{name}` _count {c} != +Inf bucket {}",
                        inf.unwrap()
                    ));
                }
            }
        }
        Ok(())
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return err("HELP with no metric name".into());
            }
            if help_seen.contains_key(&name) {
                return err(format!("duplicate HELP for `{name}`"));
            }
            help_seen.insert(name, true);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").to_string();
            if !matches!(kind.as_str(), "counter" | "gauge" | "histogram") {
                return err(format!("unknown metric type `{kind}`"));
            }
            if !help_seen.contains_key(&name) {
                return err(format!("TYPE for `{name}` without preceding HELP"));
            }
            if declared.contains_key(&name) {
                return err(format!("duplicate TYPE for `{name}`"));
            }
            // Close out the previous histogram, if any.
            if let Some((prev_name, prev_kind)) = &current {
                if prev_kind == "histogram" {
                    finish_histogram(prev_name, &hist_inf_count, hist_sum_seen, &hist_count_val)?;
                }
            }
            declared.insert(name.clone(), kind.clone());
            current = Some((name, kind));
            hist_prev_le = f64::NEG_INFINITY;
            hist_prev_count = 0;
            hist_inf_count = None;
            hist_sum_seen = false;
            hist_count_val = None;
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal
        }

        // Sample line: `name{labels} value` or `name value`.
        let (series, value_str) = match line.rsplit_once(' ') {
            Some(x) => x,
            None => return err("sample line without a value".into()),
        };
        let series = series.trim();
        let base = series.split('{').next().unwrap_or("").to_string();
        let (name, kind) = match &current {
            Some(c) => c.clone(),
            None => return err(format!("sample `{base}` before any TYPE")),
        };
        if series_seen.contains(&series.to_string()) {
            return err(format!("duplicate series `{series}`"));
        }
        series_seen.push(series.to_string());

        let value: f64 = match value_str.trim() {
            "+Inf" => f64::INFINITY,
            v => v
                .parse()
                .map_err(|_| format!("line {}: bad value `{v}`", lineno + 1))?,
        };

        if kind == "histogram" {
            if base == format!("{name}_bucket") {
                let le_str = series
                    .split("le=\"")
                    .nth(1)
                    .and_then(|s| s.split('"').next())
                    .ok_or_else(|| format!("line {}: bucket without le label", lineno + 1))?;
                let le = if le_str == "+Inf" {
                    f64::INFINITY
                } else {
                    le_str
                        .parse()
                        .map_err(|_| format!("line {}: bad le `{le_str}`", lineno + 1))?
                };
                if le <= hist_prev_le {
                    return err(format!("non-increasing bucket bound {le_str}"));
                }
                let count = value as u64;
                if count < hist_prev_count {
                    return err(format!("non-monotone bucket count {count}"));
                }
                hist_prev_le = le;
                hist_prev_count = count;
                if le.is_infinite() {
                    hist_inf_count = Some(count);
                }
            } else if base == format!("{name}_sum") {
                hist_sum_seen = true;
            } else if base == format!("{name}_count") {
                hist_count_val = Some(value as u64);
            } else {
                return err(format!(
                    "sample `{base}` does not belong to histogram `{name}`"
                ));
            }
        } else if base != *name {
            return err(format!(
                "sample `{base}` does not belong to metric `{name}`"
            ));
        } else if kind == "counter" && value < 0.0 {
            return err(format!("negative counter value {value}"));
        }
    }

    if let Some((prev_name, prev_kind)) = &current {
        if prev_kind == "histogram" {
            finish_histogram(prev_name, &hist_inf_count, hist_sum_seen, &hist_count_val)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_render_and_validate() {
        let reg = Registry::new();
        let c = reg.counter("test_ops_total", "total ops");
        c.inc();
        c.add(4.0);
        let g = reg.gauge("test_depth", "queue depth");
        g.set(3.0);
        let h = reg.histogram("test_latency_seconds", "latency");
        h.observe(5e-7); // below first bound
        h.observe(0.01);
        h.observe(5000.0); // beyond last bound -> +Inf
        let text = reg.render();
        validate_prometheus(&text).expect("valid exposition");
        assert!(text.contains("test_ops_total 5\n"));
        assert!(text.contains("test_depth 3\n"));
        assert!(text.contains("test_latency_seconds_count 3\n"));
        assert!(text.contains("le=\"+Inf\"} 3\n"));
        assert_eq!(c.get(), 5.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 5000.0100005).abs() < 1e-6);
    }

    #[test]
    fn labeled_counter_families_render_per_series_and_validate() {
        let reg = Registry::new();
        let ok = reg.labeled_counter(
            "test_requests_total",
            "requests",
            &[("endpoint", "/metrics"), ("code", "200")],
        );
        ok.inc();
        ok.inc();
        // Same label set in a different order must resolve to the same series.
        let same = reg.labeled_counter(
            "test_requests_total",
            "requests",
            &[("code", "200"), ("endpoint", "/metrics")],
        );
        same.inc();
        let not_found = reg.labeled_counter(
            "test_requests_total",
            "requests",
            &[("code", "404"), ("endpoint", "other")],
        );
        not_found.inc();
        let text = reg.render();
        validate_prometheus(&text).expect("valid exposition");
        assert!(text.contains("test_requests_total{code=\"200\",endpoint=\"/metrics\"} 3\n"));
        assert!(text.contains("test_requests_total{code=\"404\",endpoint=\"other\"} 1\n"));
        assert_eq!(
            text.matches("# TYPE test_requests_total counter").count(),
            1
        );
    }

    #[test]
    fn handles_are_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter("same_total", "x");
        let b = reg.counter("same_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2.0);
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        // Sample before any metadata.
        assert!(validate_prometheus("foo 1\n").is_err());
        // TYPE without HELP.
        assert!(validate_prometheus("# TYPE foo counter\nfoo 1\n").is_err());
        // Duplicate series.
        let dup = "# HELP foo x\n# TYPE foo counter\nfoo 1\nfoo 2\n";
        assert!(validate_prometheus(dup).is_err());
        // Histogram without +Inf.
        let no_inf = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(validate_prometheus(no_inf).is_err());
        // Non-monotone buckets.
        let non_mono = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_prometheus(non_mono).is_err());
        // A correct histogram passes.
        let ok = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9.5\nh_count 5\n";
        validate_prometheus(ok).expect("valid");
    }

    #[test]
    fn bucket_bounds_are_strictly_increasing() {
        for w in BUCKET_BOUNDS.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}

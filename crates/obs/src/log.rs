//! Leveled structured logging on the obs clock.
//!
//! Events are one JSON object per line on stderr — machine-splittable the
//! way the rest of the observability surface already is — and carry the
//! same microsecond timestamps as the span recorder ([`crate::now_us`]),
//! so a log line can be correlated with the trace timeline it interleaves.
//! When the span recorder is enabled, every emitted event is also mirrored
//! as a trace instant event under the `"log"` category, which makes log
//! context visible inside Perfetto next to the spans it annotates.
//!
//! Filtering is by a single maximum level, read once from the
//! `HISVSIM_LOG` environment variable (`off`, `error`, `warn`, `info`,
//! `debug`, `trace`; default `warn`) and overridable at runtime with
//! [`set_max_level`] (tests, embedding binaries).

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or user-visible failures.
    Error = 0,
    /// Suspicious conditions the process survives.
    Warn = 1,
    /// Lifecycle milestones (listen addresses, rendezvous, shutdown).
    Info = 2,
    /// Per-job / per-connection diagnostics.
    Debug = 3,
    /// High-volume internals.
    Trace = 4,
}

impl Level {
    /// Lower-case name as emitted in the JSON `level` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    fn parse(s: &str) -> Option<Option<Level>> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" => Some(None),
            "error" => Some(Some(Level::Error)),
            "warn" | "warning" => Some(Some(Level::Warn)),
            "info" => Some(Some(Level::Info)),
            "debug" => Some(Some(Level::Debug)),
            "trace" => Some(Some(Level::Trace)),
            _ => None,
        }
    }
}

/// Threshold encoding: number of enabled levels (0 = off, 1 = error only,
/// …, 5 = everything). `u8::MAX` in `OVERRIDE` means "defer to the env".
const DEFAULT_THRESHOLD: u8 = Level::Warn as u8 + 1;
static OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);

fn env_threshold() -> u8 {
    static ENV: OnceLock<u8> = OnceLock::new();
    *ENV.get_or_init(|| {
        match std::env::var("HISVSIM_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
        {
            Some(None) => 0,
            Some(Some(level)) => level as u8 + 1,
            None => DEFAULT_THRESHOLD,
        }
    })
}

fn threshold() -> u8 {
    let over = OVERRIDE.load(Ordering::Relaxed);
    if over == u8::MAX {
        env_threshold()
    } else {
        over
    }
}

/// Override the env-derived filter at runtime; `None` silences everything.
pub fn set_max_level(level: Option<Level>) {
    OVERRIDE.store(level.map_or(0, |l| l as u8 + 1), Ordering::Relaxed);
}

/// Whether an event at `level` would currently be emitted.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    (level as u8) < threshold()
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn format_line(level: Level, target: &str, msg: &str, fields: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(64 + msg.len());
    out.push_str("{\"ts_us\":");
    out.push_str(&crate::trace::now_us().to_string());
    out.push_str(",\"level\":\"");
    out.push_str(level.as_str());
    out.push_str("\",\"target\":");
    push_json_str(&mut out, target);
    out.push_str(",\"msg\":");
    push_json_str(&mut out, msg);
    for (key, value) in fields {
        out.push(',');
        push_json_str(&mut out, key);
        out.push(':');
        push_json_str(&mut out, value);
    }
    out.push('}');
    out
}

/// Emit a structured event. `target` names the subsystem (crate or module),
/// `fields` are extra key/value pairs appended to the JSON object. Below
/// the active filter this is a single relaxed atomic load.
pub fn log(level: Level, target: &str, msg: &str, fields: &[(&str, &str)]) {
    if !log_enabled(level) {
        return;
    }
    let line = format_line(level, target, msg, fields);
    {
        let stderr = std::io::stderr();
        let mut handle = stderr.lock();
        let _ = writeln!(handle, "{line}");
    }
    // Mirror into the trace timeline so log context shows up in Perfetto.
    if crate::trace::enabled() {
        let mut detail = format!("{target}: {msg}");
        for (key, value) in fields {
            detail.push_str(&format!(" {key}={value}"));
        }
        crate::trace::instant("log", level.as_str(), detail);
    }
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Error, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, &str)]) {
    log(Level::Debug, target, msg, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::parse("INFO"), Some(Some(Level::Info)));
        assert_eq!(Level::parse("off"), Some(None));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn override_controls_enablement() {
        set_max_level(Some(Level::Debug));
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Debug));
        assert!(!log_enabled(Level::Trace));
        set_max_level(None);
        assert!(!log_enabled(Level::Error));
        // Restore the env-derived default for sibling tests.
        OVERRIDE.store(u8::MAX, Ordering::Relaxed);
    }

    #[test]
    fn formatted_lines_are_valid_json_with_escapes() {
        let line = format_line(
            Level::Warn,
            "hisvsim-net",
            "worker \"3\" died\n",
            &[("rank", "3"), ("path", "C:\\tmp")],
        );
        let v = serde_json::value_from_str(&line).expect("log line parses as JSON");
        assert_eq!(v.get_field("level").and_then(|x| x.as_str()), Some("warn"));
        assert_eq!(v.get_field("rank").and_then(|x| x.as_str()), Some("3"));
        assert_eq!(
            v.get_field("msg").and_then(|x| x.as_str()),
            Some("worker \"3\" died\n")
        );
        assert!(v.get_field("ts_us").is_some());
    }
}

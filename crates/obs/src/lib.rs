//! hisvsim-obs: unified observability for the HiSVSIM workspace.
//!
//! Four parts:
//!
//! - [`trace`]: a low-overhead span/event recorder. Instrumented code calls
//!   [`span`]/[`instant`]; recording is off by default (a single relaxed
//!   atomic load per call site) and compiles out entirely without the
//!   `trace` feature. [`drain`] collects every thread's buffered spans and
//!   [`chrome_trace_json`] renders them for `chrome://tracing`/Perfetto.
//!   Worker processes ship their [`SpanRecord`]s back over the cluster
//!   protocol so a multi-rank run merges into one timeline.
//!
//! - [`metrics`]: a process-wide [`Registry`] of counters, gauges, and
//!   log-scale histograms with Prometheus text exposition
//!   ([`Registry::render`]) and a strict format checker
//!   ([`validate_prometheus`]) used by the test suite and CI.
//!
//! - [`log`]: leveled structured JSON logging on the same clock as the
//!   span recorder, filtered by `HISVSIM_LOG` and mirrored into the trace
//!   timeline as instant events when recording is on.
//!
//! - [`profile`]: measured-cost aggregation. A [`CostProfile`] folds
//!   drained spans and job phase timings into per-kernel/per-collective
//!   bandwidth tables that the runtime's engine selector and fusion
//!   strategy resolver consult in place of their static models —
//!   observability closing the loop into placement decisions.

pub mod log;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use log::{log_enabled, set_max_level, Level};
pub use metrics::{validate_prometheus, Counter, Gauge, Histogram, Registry, BUCKET_BOUNDS};
pub use profile::{
    CollectiveCost, CostProfile, KernelCost, PhaseCost, ProfileMode, ProfileStore, PROFILE_VERSION,
};
pub use trace::{
    chrome_trace_json, drain, dropped, enabled, instant, now_us, record, set_enabled, span,
    SpanGuard, SpanRecord,
};

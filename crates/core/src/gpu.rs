//! The GPU-extrapolation model (Sec. VI, Tables III and IV).
//!
//! The paper demonstrates a hybrid configuration: HiSVSIM's partitioner and
//! communication layer wrapped around the HyQuas GPU kernel, with one V100
//! per node. The end-to-end numbers in Table IV are *estimates* assembled
//! from measured per-part GPU kernel times plus the communication cost of the
//! part switches. No GPU is available to this reproduction, so the per-part
//! kernel time is itself modelled with an effective-throughput constant
//! calibrated against the per-part milliseconds the paper reports; the
//! estimation procedure (the thing Table IV actually evaluates) is
//! reproduced unchanged.

use hisvsim_circuit::Circuit;
use hisvsim_cluster::NetworkModel;
use hisvsim_dag::{CircuitDag, Partition};
use serde::{Deserialize, Serialize};

/// Throughput model of a GPU state-vector kernel.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GpuModel {
    /// Effective amplitude-updates per second sustained by the kernel
    /// (one gate applied to a 2^k state counts as 2^k updates).
    pub amp_updates_per_s: f64,
    /// Fixed overhead per part (kernel compilation/launch, host-side setup).
    pub part_overhead_s: f64,
}

impl GpuModel {
    /// Constants calibrated against the paper's Table III: the dagP parts of
    /// qaoa-28 (747 gates @ 22 qubits ≈ 146 ms, 905 gates @ 24 qubits ≈
    /// 184 ms on one V100 with the HyQuas kernel).
    pub fn v100_hyquas() -> Self {
        Self {
            amp_updates_per_s: 6.5e10,
            part_overhead_s: 0.002,
        }
    }

    /// Modelled kernel time for a part of `num_gates` gates executed against
    /// an inner state vector of `inner_qubits` qubits.
    pub fn part_time_s(&self, num_gates: usize, inner_qubits: usize) -> f64 {
        let updates = num_gates as f64 * (1u64 << inner_qubits) as f64;
        self.part_overhead_s + updates / self.amp_updates_per_s
    }
}

/// Per-part row of the Table III reproduction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartEstimate {
    /// Part index in execution order.
    pub part: usize,
    /// Number of distinct qubits the part's gates touch (the part file's
    /// register width before padding to the local qubit count).
    pub qubits: usize,
    /// Number of gates in the part.
    pub gates: usize,
    /// Modelled single-GPU kernel time in seconds.
    pub gpu_time_s: f64,
}

/// The Table IV-style end-to-end estimate for a hybrid HiSVSIM + GPU-kernel
/// execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HybridEstimate {
    /// Strategy name used for the partition.
    pub strategy: String,
    /// Per-part breakdown (Table III).
    pub parts: Vec<PartEstimate>,
    /// Total modelled GPU computation time in seconds (sum over parts — the
    /// parts execute sequentially on every node, as in the paper).
    pub computation_s: f64,
    /// Modelled communication time in seconds for the part switches.
    pub communication_s: f64,
}

impl HybridEstimate {
    /// Total modelled end-to-end time.
    pub fn total_s(&self) -> f64 {
        self.computation_s + self.communication_s
    }
}

/// Estimate the hybrid execution of `circuit` under `partition` on
/// `num_gpus` single-GPU nodes connected by `network`.
///
/// Communication: each part switch redistributes the full state vector
/// across the nodes (each node re-sends the fraction of its slice whose
/// owner changes — bounded here by its full slice, the paper's worst case),
/// and the final state is left distributed (as in the paper's measurement).
pub fn estimate_hybrid(
    circuit: &Circuit,
    dag: &CircuitDag,
    partition: &Partition,
    strategy_name: &str,
    gpu: GpuModel,
    network: NetworkModel,
    num_gpus: usize,
) -> HybridEstimate {
    assert!(num_gpus.is_power_of_two() && num_gpus >= 1);
    let order = partition.execution_order(dag);
    let by_part = partition.gates_by_part();
    let local_qubits = circuit.num_qubits() - (num_gpus.trailing_zeros() as usize);

    let mut parts = Vec::with_capacity(order.len());
    let mut computation_s = 0.0;
    for (idx, &part) in order.iter().enumerate() {
        let gates = by_part[part].len();
        let qubits = dag.working_set_of_gates(&by_part[part]).len();
        // The kernel executes against the node-local slice (the inner state
        // vector is padded up to the local qubit count, as Sec. VI describes).
        let inner = qubits.max(local_qubits.min(circuit.num_qubits()));
        let gpu_time_s = gpu.part_time_s(gates, inner.min(circuit.num_qubits()));
        computation_s += gpu_time_s;
        parts.push(PartEstimate {
            part: idx,
            qubits,
            gates,
            gpu_time_s,
        });
    }

    // One redistribution per part switch; each node injects (at most) its
    // full local slice into the network per switch.
    let switches = order.len().saturating_sub(1);
    let slice_bytes = (16u128 << local_qubits).min(u128::from(u64::MAX)) as usize;
    let per_switch = if num_gpus == 1 {
        0.0
    } else {
        network.message_time(slice_bytes)
    };
    let communication_s = switches as f64 * per_switch;

    HybridEstimate {
        strategy: strategy_name.to_string(),
        parts,
        computation_s,
        communication_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;
    use hisvsim_partition::Strategy;

    #[test]
    fn part_time_scales_with_gates_and_qubits() {
        let gpu = GpuModel::v100_hyquas();
        let small = gpu.part_time_s(100, 20);
        let more_gates = gpu.part_time_s(200, 20);
        let more_qubits = gpu.part_time_s(100, 21);
        assert!(more_gates > small);
        assert!(more_qubits > small);
        // Doubling qubits doubles the state and hence the amplitude updates.
        assert!(
            ((more_qubits - gpu.part_overhead_s) / (small - gpu.part_overhead_s) - 2.0).abs()
                < 1e-9
        );
    }

    #[test]
    fn calibration_reproduces_table3_magnitudes() {
        // Table III: 747 gates at 22 qubits ≈ 146 ms, 905 at 24 ≈ 184 ms.
        let gpu = GpuModel::v100_hyquas();
        let p0 = gpu.part_time_s(747, 22);
        let p1 = gpu.part_time_s(905, 24);
        assert!(
            p0 > 0.02 && p0 < 0.30,
            "P0 estimate {p0}s out of range (paper: 0.146)"
        );
        assert!(
            p1 > 0.08 && p1 < 0.60,
            "P1 estimate {p1}s out of range (paper: 0.184)"
        );
        assert!(p1 > p0);
    }

    #[test]
    fn hybrid_estimate_orders_strategies_like_table4() {
        // dagP (fewest parts) must have the lowest communication estimate;
        // total computation should be comparable across strategies (same
        // gates, similar padded width) — the paper's observation.
        let circuit = generators::by_name("qaoa", 16);
        let dag = CircuitDag::from_circuit(&circuit);
        let gpu = GpuModel::v100_hyquas();
        let net = NetworkModel::hdr100();
        let mut comm: Vec<(String, f64, usize)> = Vec::new();
        for strategy in Strategy::ALL {
            let p = strategy.partition(&dag, 14).unwrap();
            let est = estimate_hybrid(&circuit, &dag, &p, strategy.name(), gpu, net, 4);
            assert_eq!(
                est.parts.iter().map(|p| p.gates).sum::<usize>(),
                circuit.num_gates(),
                "every gate must be covered"
            );
            comm.push((
                strategy.name().to_string(),
                est.communication_s,
                est.parts.len(),
            ));
        }
        let dagp = comm.iter().find(|(n, _, _)| n == "dagP").unwrap();
        for other in &comm {
            assert!(
                dagp.1 <= other.1 + 1e-12,
                "dagP comm {} should not exceed {} ({})",
                dagp.1,
                other.1,
                other.0
            );
        }
    }

    #[test]
    fn single_gpu_has_no_communication() {
        let circuit = generators::by_name("ising", 12);
        let dag = CircuitDag::from_circuit(&circuit);
        let p = Strategy::DagP.partition(&dag, 10).unwrap();
        let est = estimate_hybrid(
            &circuit,
            &dag,
            &p,
            "dagP",
            GpuModel::v100_hyquas(),
            NetworkModel::hdr100(),
            1,
        );
        assert_eq!(est.communication_s, 0.0);
        assert!(est.total_s() > 0.0);
    }
}

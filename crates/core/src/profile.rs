//! Memory-access trace generation for the Table II reproduction.
//!
//! The paper profiles the single-node execution of each partitioning
//! strategy with VTune and reports how memory-bound the resulting access
//! pattern is. This module produces the equivalent *deterministic* signal:
//! the sequence of state-vector element indices the hierarchical execution
//! touches (outer-vector gather/scatter sweeps plus the cache-resident inner
//! work), which `hisvsim-memmodel` then replays through a modelled cache
//! hierarchy.
//!
//! Strategies with more parts sweep the outer vector more often relative to
//! the useful inner work, so they show a larger DRAM-served share — the same
//! mechanism behind the paper's measured DRAM-stall differences.

use hisvsim_circuit::Circuit;
use hisvsim_dag::{CircuitDag, Partition};
use hisvsim_statevec::GatherMap;

/// Options controlling trace generation size.
#[derive(Debug, Clone, Copy)]
pub struct TraceOptions {
    /// Maximum number of free-qubit assignments replayed per part (the access
    /// pattern is periodic in the assignment index, so a sample suffices).
    pub max_assignments_per_part: usize,
    /// Hard cap on the total trace length.
    pub max_accesses: usize,
}

impl Default for TraceOptions {
    fn default() -> Self {
        Self {
            max_assignments_per_part: 8,
            max_accesses: 4_000_000,
        }
    }
}

/// Generate the amplitude-index access trace of a hierarchical execution of
/// `circuit` under `partition`.
///
/// Outer state-vector elements occupy indices `[0, 2^n)`; the inner state
/// vector is modelled as a separate buffer at indices `[2^n, 2^n + 2^w)`
/// (reused across parts, as the implementation reuses its allocation).
pub fn hierarchical_access_trace(
    circuit: &Circuit,
    dag: &CircuitDag,
    partition: &Partition,
    options: TraceOptions,
) -> Vec<usize> {
    let n = circuit.num_qubits();
    let outer_len = 1usize << n;
    let mut trace = Vec::new();
    let order = partition.execution_order(dag);
    let parts = partition.gates_by_part();

    'outer: for &part in &order {
        let gates = &parts[part];
        if gates.is_empty() {
            continue;
        }
        let working_set: Vec<usize> = dag.working_set_of_gates(gates).into_iter().collect();
        let map = GatherMap::new(n, &working_set);
        let inner_len = 1usize << map.inner_qubits();
        let assignments = 1usize << map.num_free_qubits();
        let replayed = assignments.min(options.max_assignments_per_part);

        for assignment in 0..replayed {
            // Gather: read 2^w outer elements, write 2^w inner elements.
            for j in 0..inner_len {
                trace.push(map.outer_index(assignment, j));
                trace.push(outer_len + j);
                if trace.len() >= options.max_accesses {
                    break 'outer;
                }
            }
            // Execute: every gate of the part sweeps the inner vector.
            for &g in gates {
                let arity = circuit.gates()[g].arity();
                // A k-qubit gate touches every inner amplitude once (in
                // pairs/groups); reads and writes hit the same lines.
                let _ = arity;
                for j in 0..inner_len {
                    trace.push(outer_len + j);
                    if trace.len() >= options.max_accesses {
                        break 'outer;
                    }
                }
            }
            // Scatter: read inner, write outer.
            for j in 0..inner_len {
                trace.push(outer_len + j);
                trace.push(map.outer_index(assignment, j));
                if trace.len() >= options.max_accesses {
                    break 'outer;
                }
            }
        }
    }
    trace
}

/// Generate the access trace of a *flat* (non-hierarchical) execution, for
/// comparison: every gate sweeps the entire outer state vector.
pub fn flat_access_trace(circuit: &Circuit, options: TraceOptions) -> Vec<usize> {
    let n = circuit.num_qubits();
    let outer_len = 1usize << n;
    let mut trace = Vec::new();
    'outer: for _gate in circuit.gates() {
        for i in 0..outer_len {
            trace.push(i);
            if trace.len() >= options.max_accesses {
                break 'outer;
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;
    use hisvsim_memmodel::{replay_amplitude_indices, HierarchyConfig};
    use hisvsim_partition::Strategy;

    fn trace_for(
        name: &str,
        width: usize,
        strategy: Strategy,
        limit: usize,
    ) -> (usize, Vec<usize>) {
        let circuit = generators::by_name(name, width);
        let dag = CircuitDag::from_circuit(&circuit);
        let partition = strategy.partition(&dag, limit).unwrap();
        let trace = hierarchical_access_trace(
            &circuit,
            &dag,
            &partition,
            TraceOptions {
                max_assignments_per_part: 4,
                max_accesses: 2_000_000,
            },
        );
        (partition.num_parts(), trace)
    }

    #[test]
    fn trace_indices_stay_in_bounds() {
        let circuit = generators::by_name("qft", 10);
        let dag = CircuitDag::from_circuit(&circuit);
        let partition = Strategy::DagP.partition(&dag, 5).unwrap();
        let trace = hierarchical_access_trace(&circuit, &dag, &partition, TraceOptions::default());
        let outer = 1usize << 10;
        let inner_max = outer + (1usize << 5);
        assert!(!trace.is_empty());
        assert!(trace.iter().all(|&i| i < inner_max));
    }

    #[test]
    fn more_parts_means_more_outer_traffic_per_gate() {
        // Nat (more parts) should produce a larger share of outer-vector
        // accesses than dagP (fewer parts) on a partition-sensitive circuit.
        let (nat_parts, nat_trace) = trace_for("qft", 12, Strategy::Nat, 5);
        let (dagp_parts, dagp_trace) = trace_for("qft", 12, Strategy::DagP, 5);
        assert!(dagp_parts <= nat_parts);
        let outer = 1usize << 12;
        let outer_share =
            |t: &[usize]| t.iter().filter(|&&i| i < outer).count() as f64 / t.len() as f64;
        assert!(
            outer_share(&dagp_trace) <= outer_share(&nat_trace) + 1e-9,
            "dagP outer share {} vs Nat {}",
            outer_share(&dagp_trace),
            outer_share(&nat_trace)
        );
    }

    #[test]
    fn hierarchical_trace_is_more_cache_friendly_than_flat() {
        // The whole point of the paper: the hierarchical execution keeps most
        // accesses in the small inner vector, so the modelled cache serves a
        // larger share of them than for the flat execution of the same
        // circuit (whose working set is the entire outer state).
        let circuit = generators::by_name("ising", 14);
        let dag = CircuitDag::from_circuit(&circuit);
        let partition = Strategy::DagP.partition(&dag, 6).unwrap();
        let opts = TraceOptions {
            max_assignments_per_part: 4,
            max_accesses: 1_000_000,
        };
        let hier = hierarchical_access_trace(&circuit, &dag, &partition, opts);
        let flat = flat_access_trace(&circuit, opts);
        let cfg = HierarchyConfig::tiny();
        let hier_stats = replay_amplitude_indices(cfg, hier.iter().copied());
        let flat_stats = replay_amplitude_indices(cfg, flat.iter().copied());
        assert!(
            hier_stats.service_fractions()[3] < flat_stats.service_fractions()[3],
            "hierarchical DRAM share {} should be below flat {}",
            hier_stats.service_fractions()[3],
            flat_stats.service_fractions()[3]
        );
    }

    #[test]
    fn max_accesses_cap_is_respected() {
        let circuit = generators::by_name("qpe", 12);
        let dag = CircuitDag::from_circuit(&circuit);
        let partition = Strategy::DagP.partition(&dag, 6).unwrap();
        let trace = hierarchical_access_trace(
            &circuit,
            &dag,
            &partition,
            TraceOptions {
                max_assignments_per_part: 8,
                max_accesses: 10_000,
            },
        );
        assert!(trace.len() <= 10_000);
    }
}

//! Execution control for long-running engine loops: cooperative
//! cancellation and progress reporting.
//!
//! Every engine's fused execution path has a `*_controlled` entry point
//! taking an [`ExecControl`]. The control carries a
//! [`CancelToken`](hisvsim_statevec::CancelToken) the loops poll at their
//! checkpoints (part switches, gather assignments, baseline schedule steps)
//! and an optional progress sink invoked with `(gates_done, gates_total)`
//! after each completed part — the signal the service layer turns into
//! `Executing { gates_done / total }` events.
//!
//! ## Cancelling an SPMD engine without deadlocking it
//!
//! The distributed engines run one thread per virtual rank, and the ranks
//! meet in collectives (`ensure_local` redistributions, the final
//! assembly). A naive per-rank poll of the token deadlocks: rank A may
//! observe the cancellation *before* part `i` and return, while rank B
//! polled an instant earlier, saw nothing, and is now blocked in part `i`'s
//! all-to-all waiting for A. [`StepGate`] solves this without extra
//! communication by memoizing one decision per schedule step: the first
//! rank to reach step `i` samples the token, and every other rank reuses
//! that decision — so either every rank enters step `i` or none does. The
//! ranks share an address space (they are threads), which is what makes the
//! shared memoization table a legal "broadcast".

use hisvsim_statevec::{CancelToken, Cancelled};
use std::sync::Arc;
use std::sync::Mutex;

/// Progress callback: `(gates_done, gates_total)`.
pub type ProgressFn = dyn Fn(u64, u64) + Send + Sync;

/// Cancellation + progress plumbing for one engine run.
///
/// The default control is inert (never cancelled, no progress sink), and
/// the uncontrolled engine entry points use exactly that — so their
/// behaviour, results and communication schedules are bit-identical to the
/// pre-control code.
#[derive(Clone, Default)]
pub struct ExecControl {
    /// The cooperative cancellation flag the loops poll.
    pub cancel: CancelToken,
    progress: Option<Arc<ProgressFn>>,
}

impl ExecControl {
    /// An inert control (never cancelled, no progress sink).
    pub fn new() -> Self {
        Self::default()
    }

    /// A control polling the given token.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Attach a progress sink called with `(gates_done, gates_total)` after
    /// each completed part / schedule step.
    pub fn with_progress<F>(mut self, progress: F) -> Self
    where
        F: Fn(u64, u64) + Send + Sync + 'static,
    {
        self.progress = Some(Arc::new(progress));
        self
    }

    /// Report progress to the sink, if any.
    pub fn report_progress(&self, gates_done: u64, gates_total: u64) {
        if let Some(sink) = &self.progress {
            sink(gates_done, gates_total);
        }
    }

    /// Checkpoint: `Err(Cancelled)` once cancellation was requested.
    pub fn check(&self) -> Result<(), Cancelled> {
        self.cancel.check()
    }
}

impl std::fmt::Debug for ExecControl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecControl")
            .field("cancelled", &self.cancel.is_cancelled())
            .field("has_progress_sink", &self.progress.is_some())
            .finish()
    }
}

/// A per-step cancellation agreement for SPMD execution (see the module
/// docs): all ranks observe the *same* cancel/continue decision at every
/// schedule step, so a cancelled run never strands a rank inside a
/// collective.
pub struct StepGate {
    token: CancelToken,
    decisions: Mutex<Vec<Option<bool>>>,
}

impl StepGate {
    /// A gate polling `token`.
    pub fn new(token: CancelToken) -> Self {
        Self {
            token,
            decisions: Mutex::new(Vec::new()),
        }
    }

    /// Should execution stop before schedule step `step`? The first caller
    /// per step samples the token; later callers (other ranks) reuse that
    /// decision. Every rank must query steps in the same ascending order.
    pub fn cancelled_at(&self, step: usize) -> bool {
        let mut decisions = self.decisions.lock().expect("step gate poisoned");
        if decisions.len() <= step {
            decisions.resize(step + 1, None);
        }
        *decisions[step].get_or_insert_with(|| self.token.is_cancelled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_control_never_cancels_and_swallows_progress() {
        let ctrl = ExecControl::new();
        assert!(ctrl.check().is_ok());
        ctrl.report_progress(1, 2); // no sink: must be a no-op
    }

    #[test]
    fn progress_sink_receives_reports() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = Arc::clone(&seen);
        let ctrl =
            ExecControl::new().with_progress(move |done, _| seen2.store(done, Ordering::SeqCst));
        ctrl.report_progress(17, 100);
        assert_eq!(seen.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn step_gate_decisions_are_memoized_and_consistent() {
        let token = CancelToken::new();
        let gate = StepGate::new(token.clone());
        assert!(!gate.cancelled_at(0));
        token.cancel();
        // Step 0 was decided before the cancellation: still false for every
        // later "rank" asking about step 0.
        assert!(!gate.cancelled_at(0));
        // A new step observes the cancellation, for everyone.
        assert!(gate.cancelled_at(1));
        assert!(gate.cancelled_at(1));
    }

    #[test]
    fn step_gate_agrees_across_racing_threads() {
        // 8 threads walk 64 steps; the token is cancelled mid-walk. All
        // threads must stop at the same step.
        let token = CancelToken::new();
        let gate = StepGate::new(token.clone());
        let stops: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let gate = &gate;
                let token = &token;
                let stops = &stops;
                scope.spawn(move || {
                    for step in 0..64 {
                        if t == 0 && step == 20 {
                            token.cancel();
                        }
                        if gate.cancelled_at(step) {
                            stops.lock().unwrap().push(step);
                            return;
                        }
                        std::thread::yield_now();
                    }
                    stops.lock().unwrap().push(64);
                });
            }
        });
        let stops = stops.into_inner().unwrap();
        assert_eq!(stops.len(), 8);
        assert!(
            stops.iter().all(|&s| s == stops[0]),
            "ranks stopped at different steps: {stops:?}"
        );
        assert!(stops[0] <= 64);
    }
}

//! Run reports: the timing and communication metrics every engine returns,
//! in the shape the paper's figures consume (total runtime, computation
//! time, average communication time, communication ratio, part counts).

use hisvsim_cluster::CommStats;
use serde::{Deserialize, Serialize};

/// Metrics of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Engine name (`"hier"`, `"dist"`, `"multilevel"`, `"iqs-baseline"`, `"flat"`).
    pub engine: String,
    /// Partitioning strategy name (`"Nat"`, `"DFS"`, `"dagP"`, or `"-"`).
    pub strategy: String,
    /// Circuit name.
    pub circuit: String,
    /// Number of qubits simulated.
    pub num_qubits: usize,
    /// Number of gates executed.
    pub num_gates: usize,
    /// Number of parts the circuit was split into (1 for flat/baseline).
    pub num_parts: usize,
    /// Number of virtual ranks (1 for single-node engines).
    pub num_ranks: usize,
    /// Wall-clock end-to-end time in seconds (maximum over ranks for
    /// distributed engines — the paper reports maximum end-to-end time).
    pub total_time_s: f64,
    /// Wall-clock computation time in seconds (maximum over ranks).
    pub compute_time_s: f64,
    /// Modelled communication time in seconds, averaged over ranks (the
    /// paper reports the average across ranks since computation and
    /// communication overlap).
    pub avg_comm_time_s: f64,
    /// Modelled communication time of the slowest rank.
    pub max_comm_time_s: f64,
    /// Aggregated communication statistics summed over all ranks.
    pub comm: CommStats,
    /// Number of state-vector redistribution (part-switch) events.
    pub num_exchanges: usize,
}

impl RunReport {
    /// A report skeleton for a single-node engine.
    pub fn single_node(
        engine: impl Into<String>,
        strategy: impl Into<String>,
        circuit: impl Into<String>,
        num_qubits: usize,
        num_gates: usize,
    ) -> Self {
        Self {
            engine: engine.into(),
            strategy: strategy.into(),
            circuit: circuit.into(),
            num_qubits,
            num_gates,
            num_parts: 1,
            num_ranks: 1,
            total_time_s: 0.0,
            compute_time_s: 0.0,
            avg_comm_time_s: 0.0,
            max_comm_time_s: 0.0,
            comm: CommStats::default(),
            num_exchanges: 0,
        }
    }

    /// End-to-end time including modelled communication: computation plus the
    /// average modelled wire time (computation and communication overlap
    /// across ranks, so the average — not the sum of maxima — is the paper's
    /// accounting; see Sec. V-C).
    pub fn modeled_total_time_s(&self) -> f64 {
        self.compute_time_s + self.avg_comm_time_s
    }

    /// Fraction of the modelled end-to-end time spent communicating.
    pub fn comm_ratio(&self) -> f64 {
        let total = self.modeled_total_time_s();
        if total <= 0.0 {
            0.0
        } else {
            self.avg_comm_time_s / total
        }
    }

    /// Improvement factor of this run over a baseline run of the same
    /// circuit: `baseline_total / self_total` (values > 1 mean this run is
    /// faster), using the modelled end-to-end times.
    pub fn improvement_over(&self, baseline: &RunReport) -> f64 {
        baseline.modeled_total_time_s() / self.modeled_total_time_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(compute: f64, comm: f64) -> RunReport {
        let mut r = RunReport::single_node("hier", "dagP", "bv", 10, 100);
        r.compute_time_s = compute;
        r.avg_comm_time_s = comm;
        r.total_time_s = compute + comm;
        r
    }

    #[test]
    fn comm_ratio_is_fraction_of_total() {
        let r = report(3.0, 1.0);
        assert!((r.comm_ratio() - 0.25).abs() < 1e-12);
        assert!((r.modeled_total_time_s() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_run_has_zero_ratio() {
        let r = report(0.0, 0.0);
        assert_eq!(r.comm_ratio(), 0.0);
    }

    #[test]
    fn improvement_factor_is_relative_to_baseline() {
        let fast = report(1.0, 0.5);
        let slow = report(2.0, 1.0);
        assert!((fast.improvement_over(&slow) - 2.0).abs() < 1e-12);
        assert!((slow.improvement_over(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn serializes_to_json() {
        let r = report(1.0, 0.2);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"dagP\""));
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.circuit, "bv");
    }
}

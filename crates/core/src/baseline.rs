//! An IQS-style distributed state-vector baseline (the comparison target of
//! the paper's Figs. 5–9).
//!
//! Intel IQS / qHiPSTER distributes the state with a static qubit→position
//! mapping and handles each gate as it comes: gates on local qubits run in
//! place, a set of standard tricks avoids communication where possible
//! (diagonal gates, gates whose only *remote* operands are controls), and
//! everything else pays a global exchange to bring the touched qubits into
//! local positions. There is no circuit-level reorganisation — which is
//! exactly what HiSVSIM adds — so the number of communication events scales
//! with the gate count rather than the part count.
//!
//! The baseline reuses [`DistState`](crate::dist::DistState), so its
//! communication is accounted by the same network model as HiSVSIM's and the
//! comparison isolates the effect of the execution schedule.

use crate::dist::{aggregate_outcomes, DistState, PreparedGate, RankOutcome};
use crate::exec::{ExecControl, StepGate};
use crate::metrics::RunReport;
use hisvsim_circuit::{Circuit, Complex64, Gate, GateKind};
use hisvsim_cluster::{run_spmd, NetworkModel, RankComm};
use hisvsim_statevec::{
    CancelToken, Cancelled, FusedCircuit, FusionStrategy, KernelDispatch, StateVector,
    DEFAULT_FUSION_WIDTH,
};
use std::time::Instant;

/// Configuration of the IQS-style baseline.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    /// Number of virtual MPI ranks (power of two).
    pub num_ranks: usize,
    /// Interconnect model for communication-time accounting.
    pub network: NetworkModel,
    /// Gate-fusion width for runs of communication-free local gates
    /// (0 disables fusion). Fusion only reorganises rank-local computation;
    /// the communication schedule — the quantity the baseline exists to
    /// model — is untouched.
    pub fusion: usize,
    /// How fusion groups are discovered within each local segment (window
    /// scan, DAG antichains, or auto selection).
    pub fusion_strategy: FusionStrategy,
    /// Kernel dispatch for every rank-local sweep (auto-detected SIMD by
    /// default; forced scalar for differential validation).
    pub kernel_dispatch: KernelDispatch,
}

impl BaselineConfig {
    /// A baseline over `num_ranks` ranks with the HDR-100 network model and
    /// the default fusion width.
    pub fn new(num_ranks: usize) -> Self {
        Self {
            num_ranks,
            network: NetworkModel::hdr100(),
            fusion: DEFAULT_FUSION_WIDTH,
            fusion_strategy: FusionStrategy::default(),
            kernel_dispatch: KernelDispatch::default(),
        }
    }

    /// Use a different network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Use a different fusion width (0 = unfused).
    pub fn with_fusion(mut self, fusion: usize) -> Self {
        self.fusion = fusion;
        self
    }

    /// Use a different fusion strategy (see [`FusionStrategy`]).
    pub fn with_fusion_strategy(mut self, strategy: FusionStrategy) -> Self {
        self.fusion_strategy = strategy;
        self
    }

    /// Use a different kernel dispatch (see [`KernelDispatch`]).
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.kernel_dispatch = dispatch;
        self
    }
}

/// One step of the baseline's precomputed schedule, shared by all ranks.
enum BaselineStep {
    /// A maximal run of gates that are purely local under the static
    /// (identity) layout, fused into one pipeline.
    LocalFused(FusedCircuit),
    /// A gate needing the distributed special cases (remote diagonal, remote
    /// control, or a paid exchange), with its matrix prepared once.
    Distributed(PreparedGate),
}

/// Split the circuit into fused local segments and per-gate distributed
/// steps. Under the baseline's static mapping, qubits `0..l` are local on
/// every rank and the layout is the identity at every step boundary, so the
/// split is a pure function of the circuit — computed once, shared by all
/// ranks.
fn plan_baseline_steps(
    circuit: &Circuit,
    local_qubits: usize,
    fusion: usize,
    strategy: FusionStrategy,
) -> Vec<BaselineStep> {
    let mut steps = Vec::new();
    let mut segment = Circuit::new(circuit.num_qubits());
    let flush = |segment: &mut Circuit, steps: &mut Vec<BaselineStep>| {
        if !segment.is_empty() {
            let gates = std::mem::replace(segment, Circuit::new(circuit.num_qubits()));
            steps.push(BaselineStep::LocalFused(FusedCircuit::with_strategy(
                &gates, fusion, strategy,
            )));
        }
    };
    for gate in circuit.gates() {
        if fusion > 0 && gate.qubits.iter().all(|&q| q < local_qubits) {
            segment.push(gate.clone());
        } else {
            flush(&mut segment, &mut steps);
            steps.push(BaselineStep::Distributed(PreparedGate::new(gate)));
        }
    }
    flush(&mut segment, &mut steps);
    steps
}

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// The assembled final state (standard qubit order).
    pub state: StateVector,
    /// Timing, communication and structure metrics.
    pub report: RunReport,
}

/// The IQS-style baseline simulator.
#[derive(Debug, Clone, Copy)]
pub struct IqsBaseline {
    config: BaselineConfig,
}

impl IqsBaseline {
    /// Create a baseline engine.
    pub fn new(config: BaselineConfig) -> Self {
        Self { config }
    }

    /// Run `circuit` from `|0…0⟩` across the virtual ranks: fused pipelines
    /// for the communication-free runs, the per-gate distributed special
    /// cases everywhere else. The schedule (with its fused matrices) is
    /// computed once and shared by every rank.
    pub fn run(&self, circuit: &Circuit) -> BaselineRun {
        self.run_controlled(circuit, &ExecControl::default())
            .expect("an inert control cannot cancel")
    }

    /// [`IqsBaseline::run`] under an [`ExecControl`]: a [`StepGate`] keeps
    /// the per-rank cancel/continue decisions consistent before every
    /// schedule step (fused local segment or distributed gate — the
    /// latter's exchanges are the collective boundary), so a cancelled run
    /// drains without deadlock; rank 0 reports gate-level progress.
    pub fn run_controlled(
        &self,
        circuit: &Circuit,
        control: &ExecControl,
    ) -> Result<BaselineRun, Cancelled> {
        assert!(
            self.config.num_ranks.is_power_of_two(),
            "rank count must be a power of two"
        );
        let p = self.config.num_ranks.trailing_zeros() as usize;
        let local_qubits = circuit.num_qubits().saturating_sub(p);
        let steps = plan_baseline_steps(
            circuit,
            local_qubits,
            self.config.fusion,
            self.config.fusion_strategy,
        );
        let total_gates: u64 = steps
            .iter()
            .map(|s| match s {
                BaselineStep::LocalFused(fused) => fused.source_gates() as u64,
                BaselineStep::Distributed(_) => 1,
            })
            .sum();
        let step_gate = StepGate::new(control.cancel.clone());
        let start = Instant::now();
        let outcomes = run_spmd::<Complex64, Option<RankOutcome>, _>(
            self.config.num_ranks,
            self.config.network,
            |mut comm| {
                let mut state = DistState::new(&mut comm, circuit.num_qubits());
                state.set_kernel_dispatch(self.config.kernel_dispatch);
                let mut gates_done = 0u64;
                for (index, step) in steps.iter().enumerate() {
                    if step_gate.cancelled_at(index) {
                        return None;
                    }
                    match step {
                        BaselineStep::LocalFused(fused) => {
                            state.apply_fused_local(fused);
                            gates_done += fused.source_gates() as u64;
                        }
                        BaselineStep::Distributed(gate) => {
                            apply_prepared_gate_distributed(&mut state, gate);
                            gates_done += 1;
                        }
                    }
                    if state.rank() == 0 {
                        control.report_progress(gates_done, total_gates);
                    }
                }
                Some(state.finish_rank())
            },
        );
        let outcomes: Option<Vec<RankOutcome>> = outcomes.into_iter().collect();
        let Some(outcomes) = outcomes else {
            return Err(Cancelled);
        };
        let wall = start.elapsed().as_secs_f64();
        let (state, report) = aggregate_outcomes("iqs-baseline", "-", circuit, 1, outcomes, wall);
        Ok(BaselineRun { state, report })
    }
}

/// Execute one rank of the IQS-style baseline against `comm` — the SPMD
/// body shared by the in-process engine and `hisvsim-net`'s remote process
/// workers. The step schedule is a pure function of the circuit, so every
/// rank (thread or process) derives the identical schedule independently.
pub fn run_baseline_rank<C: RankComm<Complex64>>(
    comm: &mut C,
    circuit: &Circuit,
    fusion: usize,
    strategy: FusionStrategy,
    dispatch: KernelDispatch,
) -> RankOutcome {
    assert!(
        comm.size().is_power_of_two(),
        "rank count must be a power of two"
    );
    let p = comm.size().trailing_zeros() as usize;
    let local_qubits = circuit.num_qubits().saturating_sub(p);
    let steps = plan_baseline_steps(circuit, local_qubits, fusion, strategy);
    let mut state = DistState::new(comm, circuit.num_qubits());
    state.set_kernel_dispatch(dispatch);
    for step in &steps {
        match step {
            BaselineStep::LocalFused(fused) => state.apply_fused_local(fused),
            BaselineStep::Distributed(gate) => apply_prepared_gate_distributed(&mut state, gate),
        }
    }
    state.finish_rank()
}

/// [`run_baseline_rank`] with cooperative cancellation: the ranks run a
/// cancel vote before every step (the same checkpoint placement the
/// in-process engine's `StepGate` uses), so a fired [`CancelToken`] stops
/// all ranks at the same step boundary without stranding any rank inside
/// a collective. `recycled` optionally reuses a previous run's local-slice
/// allocation.
pub fn run_baseline_rank_cancellable<C: RankComm<Complex64>>(
    comm: &mut C,
    circuit: &Circuit,
    fusion: usize,
    strategy: FusionStrategy,
    dispatch: KernelDispatch,
    cancel: &CancelToken,
    recycled: Option<Vec<Complex64>>,
) -> Result<RankOutcome, Cancelled> {
    assert!(
        comm.size().is_power_of_two(),
        "rank count must be a power of two"
    );
    let p = comm.size().trailing_zeros() as usize;
    let local_qubits = circuit.num_qubits().saturating_sub(p);
    let steps = plan_baseline_steps(circuit, local_qubits, fusion, strategy);
    let mut state = DistState::new_reusing(comm, circuit.num_qubits(), recycled);
    state.set_kernel_dispatch(dispatch);
    for step in &steps {
        if state.vote_cancelled(cancel) {
            return Err(Cancelled);
        }
        match step {
            BaselineStep::LocalFused(fused) => state.apply_fused_local(fused),
            BaselineStep::Distributed(gate) => apply_prepared_gate_distributed(&mut state, gate),
        }
    }
    Ok(state.finish_rank())
}

/// Apply one gate to the distributed state, using the communication-avoiding
/// special cases a tuned static-mapping simulator applies, and falling back
/// to a qubit remap (global exchange) otherwise.
pub fn apply_gate_distributed<C: RankComm<Complex64>>(state: &mut DistState<'_, C>, gate: &Gate) {
    apply_prepared_gate_distributed(state, &PreparedGate::new(gate));
}

/// [`apply_gate_distributed`] with the gate's matrix prepared once by the
/// caller (shared across ranks).
fn apply_prepared_gate_distributed<C: RankComm<Complex64>>(
    state: &mut DistState<'_, C>,
    prepared: &PreparedGate,
) {
    let gate = &prepared.gate;
    // Case 1: everything local — apply in place.
    if state.all_local(&gate.qubits) {
        state.apply_prepared_local(std::slice::from_ref(prepared));
        return;
    }
    // Case 2: diagonal gates never mix amplitudes across ranks; the values of
    // remote qubits are fixed per rank, so the phase can be applied locally.
    if gate.kind.is_diagonal() {
        apply_diagonal_with_fixed_bits(state, prepared);
        return;
    }
    // Case 3: gates whose only remote operands are controls — the control
    // value is constant per rank, so either the reduced gate applies locally
    // or nothing happens at all.
    let num_controls = gate.kind.num_controls();
    if num_controls > 0 {
        let controls = &gate.qubits[..num_controls];
        let rest = &gate.qubits[num_controls..];
        let remote_controls: Vec<usize> = controls
            .iter()
            .copied()
            .filter(|&q| state.position(q) >= state.local_qubits())
            .collect();
        if !remote_controls.is_empty() && state.all_local(rest) {
            let all_set = remote_controls
                .iter()
                .all(|&q| state.rank_bit(state.position(q)) == 1);
            if all_set {
                let local_controls: Vec<usize> = controls
                    .iter()
                    .copied()
                    .filter(|&q| state.position(q) < state.local_qubits())
                    .collect();
                if let Some(reduced) = reduce_controls(gate, &local_controls, rest) {
                    state.apply_gates_local(std::slice::from_ref(&reduced));
                }
            }
            return;
        }
    }
    // Case 4: a remote target — pay a global exchange. A static-mapping
    // simulator (IQS, QuEST) exchanges its local slice with the pairwise
    // partner rank(s), computes, and keeps its mapping; it therefore pays the
    // same price again for the next remote-target gate. We model that by
    // temporarily remapping the gate's qubits into local positions and then
    // restoring the identity layout: the two half-state redistributions move
    // the same volume as one pairwise full-slice exchange, and — crucially —
    // the mapping does not improve over time, exactly like a static mapping.
    let identity: Vec<usize> = (0..state.num_qubits()).collect();
    state.ensure_local(&gate.qubits);
    state.apply_prepared_local(std::slice::from_ref(prepared));
    state.redistribute(identity);
}

/// Apply a diagonal gate whose operands may include remote qubits: the phase
/// factor of each local amplitude is determined by its local bits plus this
/// rank's fixed bits.
fn apply_diagonal_with_fixed_bits<C: RankComm<Complex64>>(
    state: &mut DistState<'_, C>,
    prepared: &PreparedGate,
) {
    let start = Instant::now();
    let gate = &prepared.gate;
    // CZ (a matrix-free fast-path kind) is not prepared; compute on demand.
    let owned;
    let matrix = match prepared.matrix() {
        Some(m) => m,
        None => {
            owned = gate.matrix();
            &owned
        }
    };
    let l = state.local_qubits();
    // For each operand, either the local position of the qubit or the fixed
    // bit value contributed by the rank id.
    enum Operand {
        Local(usize),
        Fixed(usize),
    }
    let operands: Vec<Operand> = gate
        .qubits
        .iter()
        .map(|&q| {
            let pos = state.position(q);
            if pos < l {
                Operand::Local(pos)
            } else {
                Operand::Fixed(state.rank_bit(pos))
            }
        })
        .collect();
    let local = state.local_state_mut();
    for (index, amp) in local.amplitudes_mut().iter_mut().enumerate() {
        let mut sub = 0usize;
        for (bit, op) in operands.iter().enumerate() {
            let value = match op {
                Operand::Local(pos) => (index >> pos) & 1,
                Operand::Fixed(v) => *v,
            };
            sub |= value << bit;
        }
        *amp *= matrix.get(sub, sub);
    }
    state.add_compute_time(start.elapsed().as_secs_f64());
}

/// Strip the (already satisfied) remote controls off a controlled gate,
/// returning the reduced gate acting on the remaining operands, or `None`
/// when the reduction is not expressible (never the case for the gate set
/// used by the generators, but kept conservative).
fn reduce_controls(gate: &Gate, local_controls: &[usize], rest: &[usize]) -> Option<Gate> {
    use GateKind::*;
    let kind = match (gate.kind, local_controls.len()) {
        (Cx, 0) => X,
        (Cy, 0) => Y,
        (Cz, 0) => Z,
        (Ch, 0) => H,
        (Cp(a), 0) => P(a),
        (Crx(a), 0) => Rx(a),
        (Cry(a), 0) => Ry(a),
        (Crz(a), 0) => Rz(a),
        (Cu3(a, b, c), 0) => U3(a, b, c),
        (Ccx, 0) => X,
        (Ccx, 1) => Cx,
        (Cswap, 0) => Swap,
        _ => return None,
    };
    let mut qubits = local_controls.to_vec();
    qubits.extend_from_slice(rest);
    // Controlled kinds expect [control, target]; reduced kinds keep the same
    // operand order convention (controls first).
    Some(Gate::new(kind, qubits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;
    use hisvsim_statevec::run_circuit;

    fn check(circuit: &Circuit, ranks: usize) -> BaselineRun {
        let expected = run_circuit(circuit);
        let run = IqsBaseline::new(BaselineConfig::new(ranks)).run(circuit);
        assert!(
            run.state.approx_eq(&expected, 1e-9),
            "{} on {ranks} ranks: baseline result diverges (max diff {})",
            circuit.name,
            run.state.max_abs_diff(&expected)
        );
        run
    }

    #[test]
    fn baseline_matches_flat_across_suite() {
        for name in generators::FAMILY_NAMES {
            let circuit = generators::by_name(name, 8);
            check(&circuit, 4);
        }
    }

    #[test]
    fn baseline_matches_flat_on_random_circuits_and_rank_counts() {
        for seed in 0..3 {
            let circuit = generators::random_circuit(8, 60, seed);
            for ranks in [1usize, 2, 8] {
                check(&circuit, ranks);
            }
        }
    }

    #[test]
    fn diagonal_and_control_tricks_avoid_communication() {
        // A circuit of H on low qubits plus CZ/RZ/CP touching the top qubit:
        // every remote-qubit gate is diagonal, so zero bytes move (beyond the
        // final assembly).
        let mut c = Circuit::new(6);
        c.h(0).h(1).rz(0.3, 5).cz(0, 5).cp(0.7, 5, 1).cx(5, 0);
        let expected = run_circuit(&c);
        let run = IqsBaseline::new(BaselineConfig::new(4)).run(&c);
        assert!(run.state.approx_eq(&expected, 1e-10));
        // cx(5,0) has a remote control and local target: also free. No gate
        // forces a redistribution, so the layout never changes.
        assert_eq!(run.report.num_exchanges, 0);
    }

    #[test]
    fn remote_targets_cost_exchanges_every_time() {
        // H on the top qubit forces communication under a static mapping —
        // and unlike HiSVSIM's persistent remapping, it costs the same again
        // for every further gate on that qubit (2 redistributions per event).
        let mut c1 = Circuit::new(6);
        c1.h(5);
        let mut c3 = Circuit::new(6);
        c3.h(5).h(5).h(5);
        let run1 = IqsBaseline::new(BaselineConfig::new(4)).run(&c1);
        let run3 = IqsBaseline::new(BaselineConfig::new(4)).run(&c3);
        assert!(run3.state.approx_eq(&run_circuit(&c3), 1e-10));
        assert!(run1.report.comm.bytes_sent > 0);
        assert_eq!(run3.report.comm.bytes_sent, 3 * run1.report.comm.bytes_sent);
        assert_eq!(run3.report.num_exchanges, 3 * run1.report.num_exchanges);
    }

    #[test]
    fn baseline_communicates_more_than_hisvsim_on_comm_heavy_circuits() {
        // The transverse-field Ising evolution applies non-diagonal gates to
        // the top qubits on every Trotter step, so a static-mapping
        // simulator pays one exchange per step and per boundary gate; the
        // part-based schedule pays one per part switch.
        use crate::dist::{DistConfig, DistributedSimulator};
        use hisvsim_partition::Strategy;
        let circuit = generators::by_name("ising", 10);
        let baseline = check(&circuit, 4);
        let hisvsim = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP))
            .run(&circuit)
            .unwrap();
        assert!(
            hisvsim.report.comm.bytes_sent < baseline.report.comm.bytes_sent,
            "HiSVSIM moved {} bytes, baseline {} bytes",
            hisvsim.report.comm.bytes_sent,
            baseline.report.comm.bytes_sent
        );
        assert!(
            hisvsim.report.avg_comm_time_s <= baseline.report.avg_comm_time_s,
            "HiSVSIM modelled comm {}s, baseline {}s",
            hisvsim.report.avg_comm_time_s,
            baseline.report.avg_comm_time_s
        );
    }

    #[test]
    fn fusion_never_changes_the_baseline_communication_schedule() {
        // The baseline exists to model a static-mapping simulator's
        // communication; fused local segments must leave every comm counter
        // untouched while still matching the flat reference.
        for name in ["ising", "qft", "adder"] {
            let circuit = generators::by_name(name, 9);
            let expected = run_circuit(&circuit);
            let unfused = IqsBaseline::new(BaselineConfig::new(4).with_fusion(0)).run(&circuit);
            let fused = IqsBaseline::new(BaselineConfig::new(4)).run(&circuit);
            assert!(unfused.state.approx_eq(&expected, 1e-9));
            assert!(fused.state.approx_eq(&expected, 1e-9));
            assert_eq!(fused.report.num_exchanges, unfused.report.num_exchanges);
            assert_eq!(fused.report.comm.bytes_sent, unfused.report.comm.bytes_sent);
            assert_eq!(
                fused.report.comm.messages_sent,
                unfused.report.comm.messages_sent
            );
        }
    }

    #[test]
    fn ccx_with_remote_controls_reduces_correctly() {
        // Put both Toffoli controls on remote qubits: only ranks with both
        // bits set flip the local target.
        let mut c = Circuit::new(6);
        c.x(4).x(5).add(GateKind::Ccx, &[4, 5, 0]);
        check(&c, 4);
        // And with one remote, one local control.
        let mut c2 = Circuit::new(6);
        c2.x(5).x(1).add(GateKind::Ccx, &[5, 1, 0]);
        check(&c2, 4);
    }
}

//! # hisvsim-core
//!
//! The HiSVSIM engines: everything above the gate kernels and below the
//! benchmark harness in the Rust reproduction of *"Efficient Hierarchical
//! State Vector Simulation of Quantum Circuits via Acyclic Graph
//! Partitioning"* (CLUSTER 2022).
//!
//! | Module | Paper section | What it provides |
//! |---|---|---|
//! | [`hier`] | III-B/C, Alg. 1 | single-node Gather–Execute–Scatter engine |
//! | [`dist`] | III-D | distributed engine over virtual MPI ranks (process/local qubits, part-switch redistribution) |
//! | [`multilevel`] | IV, V-D | two-level engine (node-level parts + cache-level parts) |
//! | [`baseline`] | V (comparison) | IQS-style static-mapping distributed baseline |
//! | [`gpu`] | VI | GPU-kernel throughput model and hybrid estimates (Tables III/IV) |
//! | [`profile`] | V-A (Table II) | memory-access trace generation for the cache model |
//! | [`metrics`] | V | the [`RunReport`](metrics::RunReport) every engine returns |
//!
//! Every engine is validated against the flat reference simulator
//! (`hisvsim_statevec::run_circuit`) — the correctness anchor described in
//! DESIGN.md.
//!
//! ## The layer above: the batch runtime
//!
//! Multi-job workloads do not drive these engines directly — the
//! `hisvsim-runtime` crate layers a concurrent batch scheduler on top:
//! engine auto-selection per job (`EngineSelector`), partition-plan caching
//! keyed by `Circuit::fingerprint` (`PlanCache`), and a worker pool with a
//! bounded number of resident state vectors (`Scheduler`). Each engine
//! exposes a `run_with_plan` entry point so a cached plan skips DAG
//! partitioning entirely; `run` remains the single-shot path that plans
//! internally.
//!
//! ## Example
//!
//! ```
//! use hisvsim_circuit::generators;
//! use hisvsim_core::hier::{HierConfig, HierarchicalSimulator};
//! use hisvsim_statevec::run_circuit;
//!
//! let circuit = generators::qft(8);
//! let run = HierarchicalSimulator::new(HierConfig::new(4)).run(&circuit).unwrap();
//! assert!(run.state.approx_eq(&run_circuit(&circuit), 1e-9));
//! assert!(run.report.num_parts >= 2);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod dist;
pub mod exec;
pub mod fusedplan;
pub mod gpu;
pub mod hier;
pub mod metrics;
pub mod multilevel;
pub mod profile;

pub use baseline::{
    run_baseline_rank, run_baseline_rank_cancellable, BaselineConfig, BaselineRun, IqsBaseline,
};
pub use dist::{
    aggregate_outcomes, prepare_gates, run_fused_plan_rank, run_fused_plan_rank_cancellable,
    DistConfig, DistRun, DistState, DistributedSimulator, PreparedGate, RankOutcome,
};
pub use exec::{ExecControl, StepGate};
pub use fusedplan::{FusedMlPart, FusedPart, FusedSecondPart, FusedSinglePlan, FusedTwoLevelPlan};
pub use gpu::{estimate_hybrid, GpuModel, HybridEstimate};
pub use hier::{HierConfig, HierRun, HierarchicalSimulator, SweepControl};
pub use hisvsim_statevec::{CancelToken, Cancelled};
pub use metrics::RunReport;
pub use multilevel::{
    run_two_level_plan_rank, run_two_level_plan_rank_cancellable, MultilevelConfig, MultilevelRun,
    MultilevelSimulator,
};

//! Fused execution plans: a partition plus the prefused inner circuits of
//! every part, built once and shared by every execution of the plan.
//!
//! Partitioning is a pure function of circuit structure (which is why the
//! runtime caches it); gate fusion is too. This module moves fusion to plan
//! time so it is amortised exactly like partitioning: a plan served from a
//! warm cache carries the fused matrices with it, and the engines execute
//! parts without touching `gate.matrix()` or the fusion scanner again.
//!
//! The fused inner circuits live in *working-set-relative* qubit space
//! (fused qubit `j` = `working_set[j]`), which makes one plan reusable by
//! both hierarchies:
//!
//! * the single-node engine gathers an inner vector whose qubit `j` *is*
//!   `working_set[j]` — the fused circuit applies directly;
//! * the distributed engines translate `j → layout[working_set[j]]` with
//!   [`FusedCircuit::apply_mapped`], so every virtual rank shares the same
//!   fused matrices regardless of its current layout.

use hisvsim_circuit::{Circuit, Qubit};
use hisvsim_dag::{CircuitDag, Partition};
use hisvsim_partition::MultilevelPartition;
use hisvsim_statevec::{FusedCircuit, FusionStrategy};

/// One part of a [`FusedSinglePlan`]: its working set and prefused gates.
#[derive(Debug, Clone)]
pub struct FusedPart {
    /// The part id in the underlying partition.
    pub part: usize,
    /// Outer qubit backing each inner (fused) qubit position, ascending.
    pub working_set: Vec<Qubit>,
    /// The part's gates, remapped onto the working set and fused.
    pub inner: FusedCircuit,
}

/// A single-level partition plan with prefused parts, in execution order.
#[derive(Debug, Clone)]
pub struct FusedSinglePlan {
    /// The partition the plan executes.
    pub partition: Partition,
    /// Prefused parts in topological execution order (empty parts skipped).
    pub parts: Vec<FusedPart>,
    /// The fusion width the inner circuits were fused at.
    pub fusion_width: usize,
    /// The fusion strategy the inner circuits were built with (as
    /// requested; `Auto` resolves per part).
    pub strategy: FusionStrategy,
}

impl FusedSinglePlan {
    /// Fuse every part of `partition` at `fusion_width` (≥ 1) with the
    /// window scanner.
    pub fn build(
        circuit: &Circuit,
        dag: &CircuitDag,
        partition: Partition,
        fusion_width: usize,
    ) -> Self {
        Self::build_with_strategy(
            circuit,
            dag,
            partition,
            fusion_width,
            FusionStrategy::Window,
        )
    }

    /// Fuse every part of `partition` at `fusion_width` (≥ 1) under the
    /// given [`FusionStrategy`] (`Auto` resolves independently per part:
    /// each part's inner circuit decides from its own window histogram).
    pub fn build_with_strategy(
        circuit: &Circuit,
        dag: &CircuitDag,
        partition: Partition,
        fusion_width: usize,
        strategy: FusionStrategy,
    ) -> Self {
        let order = partition.execution_order(dag);
        let gates_by_part = partition.gates_by_part();
        let parts = order
            .iter()
            .filter(|&&part| !gates_by_part[part].is_empty())
            .map(|&part| {
                fuse_part(
                    circuit,
                    dag,
                    part,
                    &gates_by_part[part],
                    fusion_width,
                    strategy,
                )
            })
            .collect();
        Self {
            partition,
            parts,
            fusion_width,
            strategy,
        }
    }

    /// Total fused sweeps across every part — the sweep count a full
    /// execution of this plan performs over its (part-local) states. Feeds
    /// the predicted-cost side of the runtime's decision verdicts.
    pub fn total_fused_ops(&self) -> usize {
        self.parts.iter().map(|p| p.inner.num_ops()).sum()
    }
}

/// Fuse one part's gates in working-set-relative space.
fn fuse_part(
    circuit: &Circuit,
    dag: &CircuitDag,
    part: usize,
    part_gates: &[usize],
    fusion_width: usize,
    strategy: FusionStrategy,
) -> FusedPart {
    let working_set: Vec<Qubit> = dag.working_set_of_gates(part_gates).into_iter().collect();
    let inner = fuse_gate_list(circuit, part_gates, &working_set, fusion_width, strategy);
    FusedPart {
        part,
        working_set,
        inner,
    }
}

/// Remap `gate_indices` of `circuit` onto `working_set` positions and fuse.
fn fuse_gate_list(
    circuit: &Circuit,
    gate_indices: &[usize],
    working_set: &[Qubit],
    fusion_width: usize,
    strategy: FusionStrategy,
) -> FusedCircuit {
    let mut map = vec![None; circuit.num_qubits()];
    for (inner, &outer) in working_set.iter().enumerate() {
        map[outer] = Some(inner);
    }
    let inner_circuit = circuit
        .subcircuit(gate_indices)
        .remap_qubits(&map, working_set.len());
    FusedCircuit::with_strategy(&inner_circuit, fusion_width, strategy)
}

/// One second-level part of a [`FusedTwoLevelPlan`]'s first-level part.
#[derive(Debug, Clone)]
pub struct FusedSecondPart {
    /// Global qubits backing the second-level inner register, ascending.
    pub working_set: Vec<Qubit>,
    /// The second-level gates, remapped onto `working_set` and fused.
    pub inner: FusedCircuit,
}

/// One first-level part of a [`FusedTwoLevelPlan`].
#[derive(Debug, Clone)]
pub struct FusedMlPart {
    /// The first-level part id.
    pub part: usize,
    /// The first-level working set (the qubits the rank must hold locally).
    pub working_set: Vec<Qubit>,
    /// Prefused second-level parts, in their topological order.
    pub second: Vec<FusedSecondPart>,
}

/// A two-level partition plan with prefused second-level parts.
#[derive(Debug, Clone)]
pub struct FusedTwoLevelPlan {
    /// The two-level partition the plan executes.
    pub ml: MultilevelPartition,
    /// Prefused first-level parts in execution order.
    pub parts: Vec<FusedMlPart>,
    /// The fusion width the inner circuits were fused at.
    pub fusion_width: usize,
    /// The fusion strategy the inner circuits were built with.
    pub strategy: FusionStrategy,
}

impl FusedTwoLevelPlan {
    /// Fuse every second-level part of `ml` at `fusion_width` (≥ 1) with
    /// the window scanner.
    pub fn build(
        circuit: &Circuit,
        dag: &CircuitDag,
        ml: MultilevelPartition,
        fusion_width: usize,
    ) -> Self {
        Self::build_with_strategy(circuit, dag, ml, fusion_width, FusionStrategy::Window)
    }

    /// Fuse every second-level part of `ml` at `fusion_width` (≥ 1) under
    /// the given [`FusionStrategy`].
    pub fn build_with_strategy(
        circuit: &Circuit,
        dag: &CircuitDag,
        ml: MultilevelPartition,
        fusion_width: usize,
        strategy: FusionStrategy,
    ) -> Self {
        let first_order = ml.first.execution_order(dag);
        let first_parts = ml.first.gates_by_part();
        let parts = first_order
            .iter()
            .filter(|&&part| !first_parts[part].is_empty())
            .map(|&part| {
                let working_set: Vec<Qubit> = dag
                    .working_set_of_gates(&first_parts[part])
                    .into_iter()
                    .collect();
                let second = ml
                    .second_level_gate_lists(dag, part)
                    .into_iter()
                    .filter(|gates| !gates.is_empty())
                    .map(|gates| {
                        let ws: Vec<Qubit> = dag.working_set_of_gates(&gates).into_iter().collect();
                        FusedSecondPart {
                            inner: fuse_gate_list(circuit, &gates, &ws, fusion_width, strategy),
                            working_set: ws,
                        }
                    })
                    .collect();
                FusedMlPart {
                    part,
                    working_set,
                    second,
                }
            })
            .collect();
        Self {
            ml,
            parts,
            fusion_width,
            strategy,
        }
    }

    /// Total fused sweeps across every second-level part (see
    /// [`FusedSinglePlan::total_fused_ops`]).
    pub fn total_fused_ops(&self) -> usize {
        self.parts
            .iter()
            .map(|p| p.second.iter().map(|s| s.inner.num_ops()).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;
    use hisvsim_partition::{MultilevelPartitioner, Strategy};

    #[test]
    fn single_plan_covers_every_gate_exactly_once() {
        let circuit = generators::by_name("qft", 9);
        let dag = CircuitDag::from_circuit(&circuit);
        let partition = Strategy::DagP.partition(&dag, 5).unwrap();
        let plan = FusedSinglePlan::build(&circuit, &dag, partition, 3);
        let fused_gates: usize = plan.parts.iter().map(|p| p.inner.source_gates()).sum();
        assert_eq!(fused_gates, circuit.num_gates());
        for part in &plan.parts {
            assert!(part.working_set.len() <= 5);
            assert_eq!(part.inner.num_qubits(), part.working_set.len());
        }
    }

    #[test]
    fn two_level_plan_covers_every_gate_exactly_once() {
        let circuit = generators::by_name("qaoa", 9);
        let dag = CircuitDag::from_circuit(&circuit);
        let ml = MultilevelPartitioner::default()
            .partition(&dag, 6, 3)
            .unwrap();
        let plan = FusedTwoLevelPlan::build(&circuit, &dag, ml, 3);
        let fused_gates: usize = plan
            .parts
            .iter()
            .flat_map(|p| p.second.iter())
            .map(|s| s.inner.source_gates())
            .sum();
        assert_eq!(fused_gates, circuit.num_gates());
        for part in &plan.parts {
            for second in &part.second {
                // Second-level working sets are within the first-level one.
                assert!(second
                    .working_set
                    .iter()
                    .all(|q| part.working_set.contains(q)));
            }
        }
    }
}

//! The multi-level distributed engine (Sec. IV "Multi-level partitioning" and
//! Sec. V-D).
//!
//! The first-level partition bounds each part by the per-rank local qubit
//! count `l`, exactly as the single-level distributed engine does; the
//! second-level partition further splits each part's gates so that the gates
//! executed between two touches of the rank-local slice fit a cache-sized
//! inner state vector. Within a rank the second-level parts are executed with
//! the same Gather–Execute–Scatter loop the single-node engine uses, just
//! against the rank's local slice instead of the whole state.

use crate::dist::{aggregate_outcomes, DistState, RankOutcome};
use crate::exec::{ExecControl, StepGate};
use crate::fusedplan::{FusedSecondPart, FusedTwoLevelPlan};
use crate::metrics::RunReport;
use hisvsim_circuit::{Circuit, Complex64, Gate};
use hisvsim_cluster::{run_spmd, NetworkModel, RankComm};
use hisvsim_dag::CircuitDag;
use hisvsim_partition::{MultilevelPartition, MultilevelPartitioner, PartitionBuildError};
use hisvsim_statevec::{
    ApplyOptions, CancelToken, Cancelled, FusionStrategy, GatherMap, KernelDispatch, StateVector,
    DEFAULT_FUSION_WIDTH,
};
use std::time::Instant;

/// Configuration of the multi-level engine.
#[derive(Debug, Clone, Copy)]
pub struct MultilevelConfig {
    /// Number of virtual MPI ranks (power of two).
    pub num_ranks: usize,
    /// Second-level working-set limit (qubits whose inner state vector stays
    /// cache resident). The paper picks it from the LLC size; 2^21 amplitudes
    /// × 16 B = 32 MB, so 21 qubits on the evaluation machine — scaled down
    /// here along with everything else.
    pub second_limit: usize,
    /// Interconnect model for communication-time accounting.
    pub network: NetworkModel,
    /// Gate-fusion width for the second-level inner circuits (0 disables
    /// fusion).
    pub fusion: usize,
    /// How fusion groups are discovered (window scan, DAG antichains, or
    /// auto selection).
    pub fusion_strategy: FusionStrategy,
    /// Kernel dispatch for every rank-local sweep (auto-detected SIMD by
    /// default; forced scalar for differential validation).
    pub kernel_dispatch: KernelDispatch,
}

impl MultilevelConfig {
    /// A configuration with the HDR-100 network model and the default fusion
    /// width.
    pub fn new(num_ranks: usize, second_limit: usize) -> Self {
        Self {
            num_ranks,
            second_limit,
            network: NetworkModel::hdr100(),
            fusion: DEFAULT_FUSION_WIDTH,
            fusion_strategy: FusionStrategy::default(),
            kernel_dispatch: KernelDispatch::default(),
        }
    }

    /// Use a different network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Use a different fusion width (0 = unfused).
    pub fn with_fusion(mut self, fusion: usize) -> Self {
        self.fusion = fusion;
        self
    }

    /// Use a different fusion strategy (see [`FusionStrategy`]).
    pub fn with_fusion_strategy(mut self, strategy: FusionStrategy) -> Self {
        self.fusion_strategy = strategy;
        self
    }

    /// Use a different kernel dispatch (see [`KernelDispatch`]).
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.kernel_dispatch = dispatch;
        self
    }
}

/// Result of a multi-level run.
#[derive(Debug, Clone)]
pub struct MultilevelRun {
    /// The assembled final state (standard qubit order).
    pub state: StateVector,
    /// Timing, communication and structure metrics.
    pub report: RunReport,
    /// The two-level partition that was executed.
    pub partition: MultilevelPartition,
}

/// The multi-level distributed HiSVSIM engine (dagP at both levels).
#[derive(Debug, Clone, Copy)]
pub struct MultilevelSimulator {
    config: MultilevelConfig,
}

impl MultilevelSimulator {
    /// Create an engine with the given configuration.
    pub fn new(config: MultilevelConfig) -> Self {
        Self { config }
    }

    /// Partition (two levels) and run `circuit` from `|0…0⟩`.
    pub fn run(&self, circuit: &Circuit) -> Result<MultilevelRun, PartitionBuildError> {
        assert!(
            self.config.num_ranks.is_power_of_two(),
            "rank count must be a power of two"
        );
        let p = self.config.num_ranks.trailing_zeros() as usize;
        assert!(p <= circuit.num_qubits());
        let l = circuit.num_qubits() - p;
        let first_limit = l.max(1);
        let second_limit = self.config.second_limit.min(first_limit).max(1);

        let dag = CircuitDag::from_circuit(circuit);
        let ml = MultilevelPartitioner::default().partition(&dag, first_limit, second_limit)?;
        Ok(self.run_with_partition(circuit, &dag, ml))
    }

    /// Run `circuit` against a precomputed two-level partition *plan* (e.g.
    /// one served by the runtime's plan cache), rebuilding only the DAG.
    pub fn run_with_plan(&self, circuit: &Circuit, plan: &MultilevelPartition) -> MultilevelRun {
        let dag = CircuitDag::from_circuit(circuit);
        self.run_with_partition(circuit, &dag, plan.clone())
    }

    /// Run with an externally supplied two-level partition. Fuses each
    /// second-level part once — shared by every virtual rank and every
    /// gather assignment — unless `config.fusion` is 0.
    pub fn run_with_partition(
        &self,
        circuit: &Circuit,
        dag: &CircuitDag,
        ml: MultilevelPartition,
    ) -> MultilevelRun {
        if self.config.fusion > 0 {
            let plan = FusedTwoLevelPlan::build_with_strategy(
                circuit,
                dag,
                ml,
                self.config.fusion,
                self.config.fusion_strategy,
            );
            return self.run_with_fused_plan(circuit, &plan);
        }
        // Build the per-first-level-part schedule: the first-level execution
        // order and, within each part, the second-level gate lists in their
        // own topological order.
        let first_order = ml.first.execution_order(dag);
        let schedule: Vec<(Vec<usize>, Vec<Vec<Gate>>)> = first_order
            .iter()
            .map(|&part| {
                let working_set: Vec<usize> = dag
                    .working_set_of_gates(&ml.first.gates_by_part()[part])
                    .into_iter()
                    .collect();
                let second_lists: Vec<Vec<Gate>> = ml
                    .second_level_gate_lists(dag, part)
                    .into_iter()
                    .map(|gates| gates.iter().map(|&g| circuit.gates()[g].clone()).collect())
                    .collect();
                (working_set, second_lists)
            })
            .collect();

        let start = Instant::now();
        let outcomes = run_spmd::<Complex64, RankOutcome, _>(
            self.config.num_ranks,
            self.config.network,
            |mut comm| {
                let mut state = DistState::new(&mut comm, circuit.num_qubits());
                state.set_kernel_dispatch(self.config.kernel_dispatch);
                for (working_set, second_lists) in &schedule {
                    state.ensure_local(working_set);
                    execute_second_level(&mut state, second_lists);
                }
                state.finish_rank()
            },
        );
        let wall = start.elapsed().as_secs_f64();
        let (state, report) = aggregate_outcomes(
            "multilevel",
            "dagP",
            circuit,
            ml.num_first_level_parts(),
            outcomes,
            wall,
        );
        MultilevelRun {
            state,
            report,
            partition: ml,
        }
    }
}

impl MultilevelSimulator {
    /// Run against a prefused two-level plan: the second-level inner circuits
    /// were fused once at plan time and are shared read-only by every rank
    /// and every gather assignment.
    pub fn run_with_fused_plan(
        &self,
        circuit: &Circuit,
        plan: &FusedTwoLevelPlan,
    ) -> MultilevelRun {
        self.run_with_fused_plan_controlled(circuit, plan, &ExecControl::default())
            .expect("an inert control cannot cancel")
    }

    /// [`MultilevelSimulator::run_with_fused_plan`] under an
    /// [`ExecControl`]: a [`StepGate`] keeps every virtual rank's
    /// cancel/continue decisions consistent at *every* checkpoint — before
    /// each first-level part switch (the collective boundary) and between
    /// rank-local second-level parts — so a cancelled run drains without
    /// deadlock. Rank 0 reports `(gates_done, gates_total)` per
    /// second-level part.
    pub fn run_with_fused_plan_controlled(
        &self,
        circuit: &Circuit,
        plan: &FusedTwoLevelPlan,
        control: &ExecControl,
    ) -> Result<MultilevelRun, Cancelled> {
        let start = Instant::now();
        let total_gates: u64 = plan
            .parts
            .iter()
            .flat_map(|p| p.second.iter())
            .map(|s| s.inner.source_gates() as u64)
            .sum();
        let step_gate = StepGate::new(control.cancel.clone());
        let outcomes = run_spmd::<Complex64, Option<RankOutcome>, _>(
            self.config.num_ranks,
            self.config.network,
            |mut comm| {
                let mut state = DistState::new(&mut comm, circuit.num_qubits());
                state.set_kernel_dispatch(self.config.kernel_dispatch);
                // Checkpoint numbering walked identically by every rank:
                // one step per first-level part switch, one per
                // second-level part.
                let mut step = 0usize;
                let mut gates_done = 0u64;
                for part in &plan.parts {
                    if step_gate.cancelled_at(step) {
                        return None;
                    }
                    step += 1;
                    state.ensure_local(&part.working_set);
                    for second in &part.second {
                        if step_gate.cancelled_at(step) {
                            return None;
                        }
                        step += 1;
                        execute_second_level_fused(&mut state, std::slice::from_ref(second));
                        gates_done += second.inner.source_gates() as u64;
                        if state.rank() == 0 {
                            control.report_progress(gates_done, total_gates);
                        }
                    }
                }
                Some(state.finish_rank())
            },
        );
        let outcomes: Option<Vec<RankOutcome>> = outcomes.into_iter().collect();
        let Some(outcomes) = outcomes else {
            return Err(Cancelled);
        };
        let wall = start.elapsed().as_secs_f64();
        let (state, report) = aggregate_outcomes(
            "multilevel",
            "dagP",
            circuit,
            plan.ml.num_first_level_parts(),
            outcomes,
            wall,
        );
        Ok(MultilevelRun {
            state,
            report,
            partition: plan.ml.clone(),
        })
    }
}

/// Execute one rank of a prefused two-level plan against `comm` — the SPMD
/// body shared by the in-process engine and `hisvsim-net`'s remote process
/// workers.
pub fn run_two_level_plan_rank<C: RankComm<Complex64>>(
    comm: &mut C,
    num_qubits: usize,
    plan: &FusedTwoLevelPlan,
    dispatch: KernelDispatch,
) -> RankOutcome {
    let mut state = DistState::new(comm, num_qubits);
    state.set_kernel_dispatch(dispatch);
    for part in &plan.parts {
        state.ensure_local(&part.working_set);
        execute_second_level_fused(&mut state, &part.second);
    }
    state.finish_rank()
}

/// [`run_two_level_plan_rank`] with cooperative cancellation: the ranks
/// vote before every first-level part switch and before every second-level
/// part — the same checkpoint numbering the in-process engine's `StepGate`
/// walks — so a fired [`CancelToken`] stops all ranks at the same step
/// without stranding any rank inside a collective. `recycled` optionally
/// reuses a previous run's local-slice allocation.
pub fn run_two_level_plan_rank_cancellable<C: RankComm<Complex64>>(
    comm: &mut C,
    num_qubits: usize,
    plan: &FusedTwoLevelPlan,
    dispatch: KernelDispatch,
    cancel: &CancelToken,
    recycled: Option<Vec<Complex64>>,
) -> Result<RankOutcome, Cancelled> {
    let mut state = DistState::new_reusing(comm, num_qubits, recycled);
    state.set_kernel_dispatch(dispatch);
    for part in &plan.parts {
        if state.vote_cancelled(cancel) {
            return Err(Cancelled);
        }
        state.ensure_local(&part.working_set);
        for second in &part.second {
            if state.vote_cancelled(cancel) {
                return Err(Cancelled);
            }
            execute_second_level_fused(&mut state, std::slice::from_ref(second));
        }
    }
    Ok(state.finish_rank())
}

/// Execute prefused second-level parts against the rank's local slice: for
/// each part, translate its global working set to local positions under the
/// current layout, then Gather–Execute–Scatter with the shared fused inner
/// circuit (fused qubit `j` of the plan is inner qubit `j` of the gather by
/// construction).
fn execute_second_level_fused<C: RankComm<Complex64>>(
    state: &mut DistState<'_, C>,
    second: &[FusedSecondPart],
) {
    let start = Instant::now();
    let l = state.local_qubits();
    let opts = ApplyOptions::sequential().with_dispatch(state.kernel_dispatch());
    let mut working_positions: Vec<usize> = Vec::new();
    for part in second {
        working_positions.clear();
        working_positions.extend(part.working_set.iter().map(|&q| {
            let pos = state.position(q);
            debug_assert!(pos < l, "second-level part touches a non-local qubit");
            pos
        }));
        let map = GatherMap::new(l, &working_positions);
        let mut inner = StateVector::uninitialized(map.inner_qubits());
        let local = state.local_state_mut();
        for assignment in 0..(1usize << map.num_free_qubits()) {
            map.gather_into(local, assignment, &mut inner);
            part.inner.apply(&mut inner, &opts);
            map.scatter(&inner, local, assignment);
        }
    }
    state.add_compute_time(start.elapsed().as_secs_f64());
}

/// Execute the second-level parts of one first-level part against the rank's
/// local slice via Gather–Execute–Scatter (positions, not qubit ids, are the
/// local "qubits" here).
fn execute_second_level<C: RankComm<Complex64>>(
    state: &mut DistState<'_, C>,
    second_lists: &[Vec<Gate>],
) {
    let start = Instant::now();
    let l = state.local_qubits();
    let opts = ApplyOptions::sequential().with_dispatch(state.kernel_dispatch());
    for gates in second_lists {
        if gates.is_empty() {
            continue;
        }
        // Remap gates onto local positions and collect the working set in
        // position space.
        let mut working_positions: Vec<usize> = Vec::new();
        let remapped: Vec<Gate> = gates
            .iter()
            .map(|gate| {
                let qubits: Vec<usize> = gate
                    .qubits
                    .iter()
                    .map(|&q| {
                        let pos = state.position(q);
                        debug_assert!(pos < l, "second-level gate touches a non-local qubit");
                        if !working_positions.contains(&pos) {
                            working_positions.push(pos);
                        }
                        pos
                    })
                    .collect();
                Gate {
                    kind: gate.kind,
                    qubits,
                }
            })
            .collect();

        let map = GatherMap::new(l, &working_positions);
        let remap_table = map.remap_table();
        let inner_gates: Vec<Gate> = remapped.iter().map(|g| g.remap(&remap_table)).collect();
        let mut inner = StateVector::uninitialized(map.inner_qubits());
        let local = state.local_state_mut();
        for assignment in 0..(1usize << map.num_free_qubits()) {
            map.gather_into(local, assignment, &mut inner);
            for gate in &inner_gates {
                hisvsim_statevec::kernels::apply_gate_with(&mut inner, gate, &opts);
            }
            map.scatter(&inner, local, assignment);
        }
    }
    state.add_compute_time(start.elapsed().as_secs_f64());
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;
    use hisvsim_statevec::run_circuit;

    fn check(circuit: &Circuit, ranks: usize, second_limit: usize) -> MultilevelRun {
        let expected = run_circuit(circuit);
        let run = MultilevelSimulator::new(MultilevelConfig::new(ranks, second_limit))
            .run(circuit)
            .unwrap();
        assert!(
            run.state.approx_eq(&expected, 1e-9),
            "{} on {ranks} ranks / L2={second_limit}: multi-level result diverges (max diff {})",
            circuit.name,
            run.state.max_abs_diff(&expected)
        );
        run
    }

    #[test]
    fn multilevel_matches_flat_across_suite() {
        for name in generators::FAMILY_NAMES {
            let circuit = generators::by_name(name, 8);
            check(&circuit, 4, 3);
        }
    }

    #[test]
    fn various_second_level_limits_agree() {
        let circuit = generators::by_name("qft", 9);
        for second_limit in [2usize, 4, 6] {
            check(&circuit, 4, second_limit);
        }
    }

    #[test]
    fn degenerate_second_level_equals_single_level_structure() {
        // When the second-level limit equals the local qubit count the
        // two-level partition collapses to the single-level one.
        let circuit = generators::by_name("bv", 8);
        let run = check(&circuit, 4, 6);
        assert!(run.partition.is_degenerate() || run.partition.total_second_level_parts() > 0);
        assert_eq!(run.report.engine, "multilevel");
    }

    #[test]
    fn communication_matches_single_level_with_same_first_partition() {
        // The second level only reorganises rank-local computation; the
        // redistribution count (and hence bytes) must match the single-level
        // engine when both use the same first-level partition.
        use crate::dist::{DistConfig, DistributedSimulator};
        use hisvsim_partition::Strategy;
        let circuit = generators::by_name("qaoa", 9);
        let single = DistributedSimulator::new(DistConfig::new(4).with_strategy(Strategy::DagP))
            .run(&circuit)
            .unwrap();
        let multi = check(&circuit, 4, 3);
        // Same partitioner and limit at the first level ⇒ same part count.
        assert_eq!(single.report.num_parts, multi.report.num_parts);
        assert_eq!(single.report.num_exchanges, multi.report.num_exchanges);
    }

    #[test]
    fn report_counts_first_level_parts() {
        let circuit = generators::by_name("qpe", 9);
        let run = check(&circuit, 8, 3);
        assert_eq!(run.report.num_parts, run.partition.num_first_level_parts());
        assert!(run.partition.total_second_level_parts() >= run.partition.num_first_level_parts());
    }
}

//! The distributed (multi-rank) HiSVSIM engine of Sec. III-D.
//!
//! The `n`-qubit state vector is distributed over `2^p` virtual ranks: under
//! the current *layout* (a permutation of qubits onto bit positions), the top
//! `p` positions select the owning rank and the low `l = n - p` positions
//! index the rank's local slice. A part of the partitioned circuit is
//! executable when all of its working-set qubits sit in local positions;
//! switching to the next part therefore triggers at most one global
//! redistribution (an all-to-all-v over the virtual interconnect), instead of
//! the per-gate exchanges a circuit-agnostic simulator needs.
//!
//! The same [`DistState`] machinery backs the IQS-style baseline
//! ([`crate::baseline`]) and the multi-level engine ([`crate::multilevel`]).

use crate::exec::{ExecControl, StepGate};
use crate::fusedplan::{FusedPart, FusedSinglePlan};
use crate::metrics::RunReport;
use hisvsim_circuit::{Circuit, Complex64, Gate, UnitaryMatrix};
use hisvsim_cluster::{run_spmd, CommStats, NetworkModel, RankComm};
use hisvsim_dag::{CircuitDag, Partition};
use hisvsim_partition::{PartitionBuildError, Strategy};
use hisvsim_statevec::kernels::{apply_gate_with_matrix, uses_dense_matrix};
use hisvsim_statevec::FusedCircuit;
use hisvsim_statevec::{
    ApplyOptions, CancelToken, Cancelled, FusionStrategy, KernelDispatch, StateVector,
    DEFAULT_FUSION_WIDTH,
};
use std::time::Instant;

/// A gate bundled with its precomputed dense matrix (when its kernel path
/// consumes one), so repeated applications — one per virtual rank, each with
/// a remapped qubit list — share a single `gate.matrix()` evaluation.
#[derive(Debug, Clone)]
pub struct PreparedGate {
    /// The gate as written (global qubit ids).
    pub gate: Gate,
    matrix: Option<UnitaryMatrix>,
}

impl PreparedGate {
    /// Precompute the matrix for `gate` if its kernel dispatch needs one.
    pub fn new(gate: &Gate) -> Self {
        Self {
            gate: gate.clone(),
            matrix: uses_dense_matrix(gate).then(|| gate.matrix()),
        }
    }

    /// The precomputed dense matrix (None for matrix-free fast-path kinds).
    pub fn matrix(&self) -> Option<&UnitaryMatrix> {
        self.matrix.as_ref()
    }
}

/// Prepare a gate list once so every rank can apply it matrix-free.
pub fn prepare_gates(gates: &[Gate]) -> Vec<PreparedGate> {
    gates.iter().map(PreparedGate::new).collect()
}

/// Message tag namespace for state redistributions.
const TAG_EXCHANGE: u64 = 0x5100;

/// The per-rank distributed state: a local slice of the global state vector
/// plus the qubit layout shared (by construction) by all ranks.
///
/// Generic over the [`RankComm`] implementation, so the same engine bodies
/// run on the in-process channel world
/// ([`LocalComm`](hisvsim_cluster::LocalComm)) and on `hisvsim-net`'s
/// multi-process `TcpComm` without any change.
pub struct DistState<'a, C: RankComm<Complex64>> {
    comm: &'a mut C,
    /// Local slice of `2^l` amplitudes.
    local: StateVector,
    /// `layout[q]` = bit position of qubit `q` in the distributed index
    /// (positions `0..l` are local, `l..n` select the rank).
    layout: Vec<usize>,
    n: usize,
    l: usize,
    /// Wall-clock seconds spent applying gates locally.
    pub compute_time_s: f64,
    /// Number of global redistributions performed.
    pub exchanges: usize,
    exchange_tag: u64,
    /// Kernel dispatch for every local sweep ([`KernelDispatch::Auto`] by
    /// default; forced scalar for differential validation).
    dispatch: KernelDispatch,
}

impl<'a, C: RankComm<Complex64>> DistState<'a, C> {
    /// Initialise the distributed `|0…0⟩` state over the communicator's
    /// ranks. The rank count must be a power of two not exceeding `2^n`.
    pub fn new(comm: &'a mut C, num_qubits: usize) -> Self {
        Self::new_reusing(comm, num_qubits, None)
    }

    /// [`DistState::new`], optionally recycling a previous run's local
    /// slice allocation (e.g. the slice a persistent worker kept resident
    /// after shipping its amplitudes). A buffer of the wrong length is
    /// silently dropped and a fresh slice allocated; a reused buffer is
    /// zero-filled first, so the initial state is identical either way —
    /// only the allocation (and its page faults) is saved.
    pub fn new_reusing(
        comm: &'a mut C,
        num_qubits: usize,
        recycled: Option<Vec<Complex64>>,
    ) -> Self {
        let ranks = comm.size();
        assert!(ranks.is_power_of_two());
        let p = ranks.trailing_zeros() as usize;
        assert!(
            p <= num_qubits,
            "more rank bits ({p}) than qubits ({num_qubits})"
        );
        let l = num_qubits - p;
        let mut local = match recycled {
            Some(mut amps) if amps.len() == 1usize << l => {
                amps.fill(Complex64::ZERO);
                StateVector::from_amplitudes(amps)
            }
            _ => StateVector::uninitialized(l),
        };
        if comm.rank() == 0 {
            local.amplitudes_mut()[0] = Complex64::ONE;
        }
        Self {
            comm,
            local,
            layout: (0..num_qubits).collect(),
            n: num_qubits,
            l,
            compute_time_s: 0.0,
            exchanges: 0,
            exchange_tag: TAG_EXCHANGE,
            dispatch: KernelDispatch::default(),
        }
    }

    /// Select the kernel dispatch every subsequent local sweep uses (the
    /// scalar fallback is bit-identical to the SIMD path, so this never
    /// changes results — only how they are computed).
    pub fn set_kernel_dispatch(&mut self, dispatch: KernelDispatch) {
        self.dispatch = dispatch;
    }

    /// The kernel dispatch local sweeps run under.
    pub fn kernel_dispatch(&self) -> KernelDispatch {
        self.dispatch
    }

    /// Collective cancel agreement (see [`RankComm::vote_any`]): every rank
    /// contributes its local cancel flag and all ranks receive the OR, so
    /// an SPMD schedule stops either on every rank at the same step or on
    /// none — the only way to cancel mid-schedule without stranding a rank
    /// inside a collective.
    pub fn vote_cancelled(&mut self, cancel: &CancelToken) -> bool {
        self.comm.vote_any(cancel.is_cancelled())
    }

    /// Apply options for rank-local sweeps (sequential: parallelism lives at
    /// the rank level, not inside a slice).
    fn opts(&self) -> ApplyOptions {
        ApplyOptions::sequential().with_dispatch(self.dispatch)
    }

    /// Number of local (per-rank) qubits.
    pub fn local_qubits(&self) -> usize {
        self.l
    }

    /// This rank's id within the virtual world.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of qubits of the full state.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The current layout (`layout[q]` = position of qubit `q`).
    pub fn layout(&self) -> &[usize] {
        &self.layout
    }

    /// This rank's local slice.
    pub fn local_state(&self) -> &StateVector {
        &self.local
    }

    /// Mutable access to this rank's local slice (used by the multi-level
    /// engine to run its second-level gather/execute/scatter locally).
    pub fn local_state_mut(&mut self) -> &mut StateVector {
        &mut self.local
    }

    /// Communication statistics accumulated by this rank.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }

    /// True when every listed qubit currently sits in a local position.
    pub fn all_local(&self, qubits: &[usize]) -> bool {
        qubits.iter().all(|&q| self.layout[q] < self.l)
    }

    /// Position of qubit `q` under the current layout.
    pub fn position(&self, q: usize) -> usize {
        self.layout[q]
    }

    /// This rank's value of global-position bit `pos` (`pos >= l`).
    pub fn rank_bit(&self, pos: usize) -> usize {
        debug_assert!(pos >= self.l);
        (self.comm.rank() >> (pos - self.l)) & 1
    }

    /// Make every qubit in `qubits` local, redistributing the state if
    /// needed. Panics if more than `l` qubits are requested.
    pub fn ensure_local(&mut self, qubits: &[usize]) {
        assert!(
            qubits.len() <= self.l,
            "cannot make {} qubits local with only {} local positions",
            qubits.len(),
            self.l
        );
        if self.all_local(qubits) {
            return;
        }
        let mut new_layout = self.layout.clone();
        // Local positions whose qubit is not needed, available for eviction.
        let needed: Vec<bool> = {
            let mut v = vec![false; self.n];
            for &q in qubits {
                v[q] = true;
            }
            v
        };
        let qubit_at_position = |layout: &[usize], pos: usize| -> usize {
            layout
                .iter()
                .position(|&p| p == pos)
                .expect("layout is a permutation")
        };
        let mut free_local: Vec<usize> = (0..self.l)
            .filter(|&pos| !needed[qubit_at_position(&new_layout, pos)])
            .collect();
        for &q in qubits {
            if new_layout[q] >= self.l {
                let target = free_local.pop().expect("enough local positions");
                let evicted = qubit_at_position(&new_layout, target);
                new_layout[evicted] = new_layout[q];
                new_layout[q] = target;
            }
        }
        self.redistribute(new_layout);
    }

    /// Redistribute the state to a new layout (a permutation of qubit
    /// positions). Collective: every rank must call this with the same
    /// target layout.
    pub fn redistribute(&mut self, new_layout: Vec<usize>) {
        assert_eq!(new_layout.len(), self.n);
        if new_layout == self.layout {
            return;
        }
        let l = self.l;
        let rank = self.comm.rank();
        let size = self.comm.size();
        let mask = (1usize << l) - 1;
        let old = &self.layout;
        let new = &new_layout;

        // Map an index expressed in old-layout position space to the
        // new-layout position space (a pure bit permutation).
        let old_to_new = |old_index: usize| -> usize {
            let mut out = 0usize;
            for q in 0..self.n {
                let bit = (old_index >> old[q]) & 1;
                out |= bit << new[q];
            }
            out
        };
        let new_to_old = |new_index: usize| -> usize {
            let mut out = 0usize;
            for q in 0..self.n {
                let bit = (new_index >> new[q]) & 1;
                out |= bit << old[q];
            }
            out
        };

        // Bucket outgoing amplitudes by destination rank, in ascending local
        // offset order (the receiver reconstructs this order).
        let mut send: Vec<Vec<Complex64>> = vec![Vec::new(); size];
        for (off, &amp) in self.local.amplitudes().iter().enumerate() {
            let new_index = old_to_new((rank << l) | off);
            send[new_index >> l].push(amp);
        }
        self.exchange_tag += 1;
        let recv = self.comm.alltoallv(send, self.exchange_tag);

        // Rebuild the local slice: for each new offset, find which (source
        // rank, source offset) produced it, then consume source buffers in
        // ascending source-offset order.
        let mut origins: Vec<(usize, usize, usize)> = (0..(1usize << l))
            .map(|new_off| {
                let old_index = new_to_old((rank << l) | new_off);
                (old_index >> l, old_index & mask, new_off)
            })
            .collect();
        origins.sort_unstable();
        let mut cursors = vec![0usize; size];
        let mut new_local = StateVector::uninitialized(l);
        for (src, _src_off, new_off) in origins {
            let amp = recv[src][cursors[src]];
            cursors[src] += 1;
            new_local.amplitudes_mut()[new_off] = amp;
        }
        self.local = new_local;
        self.layout = new_layout;
        self.exchanges += 1;
    }

    /// Apply a list of gates whose qubits are all local, remapping qubit
    /// indices to their local positions. The dense matrix of each gate is
    /// computed once from the original gate — never from the remapped copy —
    /// so callers that share a prepared list across ranks (see
    /// [`prepare_gates`]) pay for each matrix exactly once overall.
    pub fn apply_gates_local(&mut self, gates: &[Gate]) {
        let prepared = prepare_gates(gates);
        self.apply_prepared_local(&prepared);
    }

    /// Apply a prepared gate list (see [`prepare_gates`]) whose qubits are
    /// all local. The precomputed matrices are shared by every rank.
    pub fn apply_prepared_local(&mut self, gates: &[PreparedGate]) {
        let start = Instant::now();
        let opts = self.opts();
        for prepared in gates {
            let gate = &prepared.gate;
            debug_assert!(
                self.all_local(&gate.qubits),
                "gate touches a non-local qubit"
            );
            let remapped = Gate {
                kind: gate.kind,
                qubits: gate.qubits.iter().map(|&q| self.layout[q]).collect(),
            };
            apply_gate_with_matrix(&mut self.local, &remapped, prepared.matrix(), &opts);
        }
        self.compute_time_s += start.elapsed().as_secs_f64();
    }

    /// Apply a fused circuit expressed in *global qubit ids* to the local
    /// slice, translating each qubit through the current layout. Every qubit
    /// the circuit touches must be local. Used by the IQS-style baseline for
    /// its communication-free segments.
    pub fn apply_fused_local(&mut self, fused: &FusedCircuit) {
        let start = Instant::now();
        let opts = self.opts();
        fused.apply_mapped(&mut self.local, &self.layout, &opts);
        self.compute_time_s += start.elapsed().as_secs_f64();
    }

    /// Apply one prefused part to the local slice: fused qubit `j` is aimed
    /// at `layout[working_set[j]]`, so the shared fused matrices run against
    /// this rank's current layout without any re-fusion. Every working-set
    /// qubit must already be local (see [`DistState::ensure_local`]).
    pub fn apply_fused_part(&mut self, part: &FusedPart) {
        let start = Instant::now();
        let map: Vec<usize> = part
            .working_set
            .iter()
            .map(|&q| {
                let pos = self.layout[q];
                debug_assert!(pos < self.l, "fused part touches a non-local qubit");
                pos
            })
            .collect();
        let opts = self.opts();
        part.inner.apply_mapped(&mut self.local, &map, &opts);
        self.compute_time_s += start.elapsed().as_secs_f64();
    }

    /// Record externally-performed local computation time (used by engines
    /// that drive the local slice directly, e.g. the multi-level engine).
    pub fn add_compute_time(&mut self, seconds: f64) {
        self.compute_time_s += seconds;
    }

    /// Finish a rank's execution: snapshot the metrics *before* the final
    /// redistribution (result extraction is not part of the simulated
    /// execution the paper times), return to the identity layout and hand
    /// back this rank's slice as a [`RankOutcome`]. The single epilogue
    /// shared by every SPMD engine.
    ///
    /// Under the identity layout each rank's local slice *is* its
    /// contiguous piece of the standard-order state, so no gather is needed
    /// — the caller (in-process aggregator or remote launcher) concatenates
    /// the slices in rank order. This replaced an `allgather` of the full
    /// state onto every rank, which moved `ranks×` more data for the same
    /// result and made remote result collection quadratic.
    pub fn finish_rank(mut self) -> RankOutcome {
        let rank = self.comm.rank();
        let compute_time_s = self.compute_time_s;
        let exchanges = self.exchanges;
        let comm_stats = self.comm_stats();
        self.redistribute((0..self.n).collect());
        RankOutcome {
            rank,
            compute_time_s,
            comm: comm_stats,
            exchanges,
            local: self.local.into_amplitudes(),
        }
    }

    /// Gather the full state onto every rank (in standard qubit order) and
    /// return it. Intended for validation and result extraction at the sizes
    /// this reproduction simulates.
    pub fn assemble_full_state(&mut self) -> StateVector {
        // First return to the identity layout so slices concatenate in
        // standard order.
        self.redistribute((0..self.n).collect());
        let slices = self.comm.allgather(
            self.local.amplitudes().to_vec(),
            self.exchange_tag + 0x10_000,
        );
        let mut amps = Vec::with_capacity(1usize << self.n);
        for slice in slices {
            amps.extend(slice);
        }
        StateVector::from_amplitudes(amps)
    }
}

/// Per-rank outcome of a distributed run, returned by the SPMD body.
#[derive(Debug, Clone)]
pub struct RankOutcome {
    /// The rank id.
    pub rank: usize,
    /// Wall-clock computation seconds on this rank.
    pub compute_time_s: f64,
    /// Communication statistics (modelled wire time, bytes, messages).
    pub comm: CommStats,
    /// Number of redistributions this rank participated in.
    pub exchanges: usize,
    /// This rank's final local slice (identity layout), used to assemble the
    /// full state.
    pub local: Vec<Complex64>,
}

/// Aggregate per-rank outcomes into a [`RunReport`] and the full state.
pub fn aggregate_outcomes(
    engine: &str,
    strategy: &str,
    circuit: &Circuit,
    num_parts: usize,
    outcomes: Vec<RankOutcome>,
    wall_time_s: f64,
) -> (StateVector, RunReport) {
    let num_ranks = outcomes.len();
    let mut amps = Vec::with_capacity(1usize << circuit.num_qubits());
    let mut compute_max = 0.0f64;
    let mut comm_sum = CommStats::default();
    let mut comm_max = 0.0f64;
    let mut comm_time_sum = 0.0f64;
    let mut exchanges = 0usize;
    for outcome in &outcomes {
        compute_max = compute_max.max(outcome.compute_time_s);
        comm_max = comm_max.max(outcome.comm.modeled_time_s);
        comm_time_sum += outcome.comm.modeled_time_s;
        comm_sum = comm_sum.merged(outcome.comm);
        exchanges = exchanges.max(outcome.exchanges);
    }
    for outcome in outcomes {
        amps.extend(outcome.local);
    }
    let state = StateVector::from_amplitudes(amps);
    let mut report = RunReport::single_node(
        engine,
        strategy,
        circuit.name.clone(),
        circuit.num_qubits(),
        circuit.num_gates(),
    );
    report.num_parts = num_parts;
    report.num_ranks = num_ranks;
    report.total_time_s = wall_time_s;
    report.compute_time_s = compute_max;
    report.avg_comm_time_s = comm_time_sum / num_ranks as f64;
    report.max_comm_time_s = comm_max;
    report.comm = comm_sum;
    report.num_exchanges = exchanges;
    (state, report)
}

/// Execute one rank of a prefused single-level plan against `comm` — the
/// SPMD body shared by the in-process engine
/// ([`DistributedSimulator::run_with_fused_plan`]) and `hisvsim-net`'s
/// remote process workers. The arithmetic and communication schedule are
/// identical on every [`RankComm`] implementation, so a process-backed run
/// is bit-identical to the channel-world run of the same plan.
pub fn run_fused_plan_rank<C: RankComm<Complex64>>(
    comm: &mut C,
    num_qubits: usize,
    plan: &FusedSinglePlan,
    dispatch: KernelDispatch,
) -> RankOutcome {
    let mut state = DistState::new(comm, num_qubits);
    state.set_kernel_dispatch(dispatch);
    for part in &plan.parts {
        state.ensure_local(&part.working_set);
        state.apply_fused_part(part);
    }
    state.finish_rank()
}

/// [`run_fused_plan_rank`] with cooperative cancellation: before every
/// part the ranks run a cancel vote ([`DistState::vote_cancelled`]), so a
/// [`CancelToken`] fired on any rank stops *all* ranks at the same part
/// boundary — cancel latency is bounded by one part's duration, and no
/// rank is ever stranded inside a collective. `recycled` optionally reuses
/// a previous run's local-slice allocation (see
/// [`DistState::new_reusing`]). The vote is charged like a barrier (wall
/// time only), so an uncancelled run reports the same [`CommStats`] as
/// the plain body.
pub fn run_fused_plan_rank_cancellable<C: RankComm<Complex64>>(
    comm: &mut C,
    num_qubits: usize,
    plan: &FusedSinglePlan,
    dispatch: KernelDispatch,
    cancel: &CancelToken,
    recycled: Option<Vec<Complex64>>,
) -> Result<RankOutcome, Cancelled> {
    let mut state = DistState::new_reusing(comm, num_qubits, recycled);
    state.set_kernel_dispatch(dispatch);
    for part in &plan.parts {
        if state.vote_cancelled(cancel) {
            return Err(Cancelled);
        }
        state.ensure_local(&part.working_set);
        state.apply_fused_part(part);
    }
    Ok(state.finish_rank())
}

/// Configuration of the distributed HiSVSIM engine.
#[derive(Debug, Clone, Copy)]
pub struct DistConfig {
    /// Number of virtual MPI ranks (power of two).
    pub num_ranks: usize,
    /// Partitioning strategy.
    pub strategy: Strategy,
    /// Working-set limit for the first-level partition. Defaults to the
    /// local qubit count when `None` (the paper's choice).
    pub limit: Option<usize>,
    /// Interconnect model for communication-time accounting.
    pub network: NetworkModel,
    /// Gate-fusion width for each part's inner circuit (0 disables fusion).
    pub fusion: usize,
    /// How fusion groups are discovered (window scan, DAG antichains, or
    /// auto selection).
    pub fusion_strategy: FusionStrategy,
    /// Kernel dispatch for every rank-local sweep (auto-detected SIMD by
    /// default; forced scalar for differential validation).
    pub kernel_dispatch: KernelDispatch,
}

impl DistConfig {
    /// A configuration with dagP partitioning, the HDR-100 network model and
    /// the default fusion width.
    pub fn new(num_ranks: usize) -> Self {
        Self {
            num_ranks,
            strategy: Strategy::DagP,
            limit: None,
            network: NetworkModel::hdr100(),
            fusion: DEFAULT_FUSION_WIDTH,
            fusion_strategy: FusionStrategy::default(),
            kernel_dispatch: KernelDispatch::default(),
        }
    }

    /// Use a different partitioning strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Use an explicit working-set limit instead of the local qubit count.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Use a different network model.
    pub fn with_network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Use a different fusion width (0 = unfused).
    pub fn with_fusion(mut self, fusion: usize) -> Self {
        self.fusion = fusion;
        self
    }

    /// Use a different fusion strategy (see [`FusionStrategy`]).
    pub fn with_fusion_strategy(mut self, strategy: FusionStrategy) -> Self {
        self.fusion_strategy = strategy;
        self
    }

    /// Use a different kernel dispatch (see [`KernelDispatch`]).
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.kernel_dispatch = dispatch;
        self
    }
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistRun {
    /// The assembled final state (standard qubit order).
    pub state: StateVector,
    /// Timing, communication and structure metrics.
    pub report: RunReport,
    /// The first-level partition that was executed.
    pub partition: Partition,
}

/// The distributed HiSVSIM engine.
#[derive(Debug, Clone, Copy)]
pub struct DistributedSimulator {
    config: DistConfig,
}

impl DistributedSimulator {
    /// Create an engine with the given configuration.
    pub fn new(config: DistConfig) -> Self {
        Self { config }
    }

    /// Partition and run `circuit` from `|0…0⟩` across the virtual ranks.
    pub fn run(&self, circuit: &Circuit) -> Result<DistRun, PartitionBuildError> {
        let num_ranks = self.config.num_ranks;
        assert!(
            num_ranks.is_power_of_two(),
            "rank count must be a power of two"
        );
        let p = num_ranks.trailing_zeros() as usize;
        assert!(
            p <= circuit.num_qubits(),
            "{num_ranks} ranks need at least {p} qubits, circuit has {}",
            circuit.num_qubits()
        );
        let l = circuit.num_qubits() - p;
        let limit = self.config.limit.unwrap_or(l).min(l.max(1));

        let dag = CircuitDag::from_circuit(circuit);
        let partition = self.config.strategy.partition(&dag, limit)?;
        Ok(self.run_with_partition(circuit, &dag, partition))
    }

    /// Run `circuit` against a precomputed partition *plan* (e.g. one served
    /// by the runtime's plan cache), rebuilding only the DAG.
    pub fn run_with_plan(&self, circuit: &Circuit, plan: &Partition) -> DistRun {
        let dag = CircuitDag::from_circuit(circuit);
        self.run_with_partition(circuit, &dag, plan.clone())
    }

    /// Run with an externally supplied (validated) partition. Fuses each
    /// part's inner circuit once — shared by every virtual rank — unless
    /// `config.fusion` is 0.
    pub fn run_with_partition(
        &self,
        circuit: &Circuit,
        dag: &CircuitDag,
        partition: Partition,
    ) -> DistRun {
        if self.config.fusion > 0 {
            let plan = FusedSinglePlan::build_with_strategy(
                circuit,
                dag,
                partition,
                self.config.fusion,
                self.config.fusion_strategy,
            );
            return self.run_with_fused_plan(circuit, &plan);
        }
        let order = partition.execution_order(dag);
        let parts = partition.gates_by_part();
        // Pre-compute the per-part gate lists (with their dense matrices) and
        // working sets once; every rank executes the same schedule, so each
        // gate's matrix is evaluated once overall instead of once per rank.
        let schedule: Vec<(Vec<PreparedGate>, Vec<usize>)> = order
            .iter()
            .map(|&part| {
                let gates: Vec<PreparedGate> = parts[part]
                    .iter()
                    .map(|&g| PreparedGate::new(&circuit.gates()[g]))
                    .collect();
                let ws: Vec<usize> = dag.working_set_of_gates(&parts[part]).into_iter().collect();
                (gates, ws)
            })
            .collect();

        let start = Instant::now();
        let outcomes = run_spmd::<Complex64, RankOutcome, _>(
            self.config.num_ranks,
            self.config.network,
            |mut comm| {
                let mut state = DistState::new(&mut comm, circuit.num_qubits());
                state.set_kernel_dispatch(self.config.kernel_dispatch);
                for (gates, working_set) in &schedule {
                    state.ensure_local(working_set);
                    state.apply_prepared_local(gates);
                }
                state.finish_rank()
            },
        );
        let wall = start.elapsed().as_secs_f64();
        let (state, report) = aggregate_outcomes(
            "dist",
            self.config.strategy.name(),
            circuit,
            partition.num_parts(),
            outcomes,
            wall,
        );
        DistRun {
            state,
            report,
            partition,
        }
    }

    /// Run against a prefused plan: each part's fused inner circuit was built
    /// once (at plan time) and is shared read-only by every virtual rank.
    pub fn run_with_fused_plan(&self, circuit: &Circuit, plan: &FusedSinglePlan) -> DistRun {
        self.run_with_fused_plan_controlled(circuit, plan, &ExecControl::default())
            .expect("an inert control cannot cancel")
    }

    /// [`DistributedSimulator::run_with_fused_plan`] under an
    /// [`ExecControl`]: a [`StepGate`] lets every virtual rank observe the
    /// same cancel/continue decision before each part switch (the engine's
    /// collective boundary), so a cancelled run drains without deadlock;
    /// rank 0 reports `(gates_done, gates_total)` after each part.
    pub fn run_with_fused_plan_controlled(
        &self,
        circuit: &Circuit,
        plan: &FusedSinglePlan,
        control: &ExecControl,
    ) -> Result<DistRun, Cancelled> {
        let start = Instant::now();
        let total_gates: u64 = plan
            .parts
            .iter()
            .map(|p| p.inner.source_gates() as u64)
            .sum();
        let step_gate = StepGate::new(control.cancel.clone());
        let outcomes = run_spmd::<Complex64, Option<RankOutcome>, _>(
            self.config.num_ranks,
            self.config.network,
            |mut comm| {
                let mut state = DistState::new(&mut comm, circuit.num_qubits());
                state.set_kernel_dispatch(self.config.kernel_dispatch);
                let mut gates_done = 0u64;
                for (step, part) in plan.parts.iter().enumerate() {
                    if step_gate.cancelled_at(step) {
                        return None;
                    }
                    state.ensure_local(&part.working_set);
                    state.apply_fused_part(part);
                    gates_done += part.inner.source_gates() as u64;
                    if state.rank() == 0 {
                        control.report_progress(gates_done, total_gates);
                    }
                }
                Some(state.finish_rank())
            },
        );
        // The StepGate guarantees agreement: all ranks completed, or none.
        let outcomes: Option<Vec<RankOutcome>> = outcomes.into_iter().collect();
        let Some(outcomes) = outcomes else {
            return Err(Cancelled);
        };
        let wall = start.elapsed().as_secs_f64();
        let (state, report) = aggregate_outcomes(
            "dist",
            self.config.strategy.name(),
            circuit,
            plan.partition.num_parts(),
            outcomes,
            wall,
        );
        Ok(DistRun {
            state,
            report,
            partition: plan.partition.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;
    use hisvsim_statevec::run_circuit;

    fn check(circuit: &Circuit, ranks: usize, strategy: Strategy) -> DistRun {
        let expected = run_circuit(circuit);
        let run = DistributedSimulator::new(
            DistConfig::new(ranks)
                .with_strategy(strategy)
                .with_network(NetworkModel::hdr100()),
        )
        .run(circuit)
        .unwrap();
        assert!(
            run.state.approx_eq(&expected, 1e-9),
            "{} on {ranks} ranks with {}: distributed result diverges (max diff {})",
            circuit.name,
            strategy.name(),
            run.state.max_abs_diff(&expected)
        );
        run
    }

    #[test]
    fn distributed_matches_flat_across_suite() {
        for name in generators::FAMILY_NAMES {
            let circuit = generators::by_name(name, 8);
            check(&circuit, 4, Strategy::DagP);
        }
    }

    #[test]
    fn all_strategies_and_rank_counts_agree() {
        for name in ["qft", "adder", "cc"] {
            let circuit = generators::by_name(name, 8);
            for ranks in [1usize, 2, 4, 8] {
                for strategy in Strategy::ALL {
                    check(&circuit, ranks, strategy);
                }
            }
        }
    }

    #[test]
    fn single_rank_needs_no_communication() {
        let circuit = generators::by_name("ising", 8);
        let run = check(&circuit, 1, Strategy::DagP);
        assert_eq!(run.report.comm.bytes_sent, 0);
        assert_eq!(run.report.num_ranks, 1);
    }

    #[test]
    fn comm_volume_grows_with_part_count_strategy() {
        // A strategy with more parts should move at least as many bytes.
        let circuit = generators::by_name("qft", 10);
        let nat = check(&circuit, 4, Strategy::Nat);
        let dagp = check(&circuit, 4, Strategy::DagP);
        assert!(dagp.report.num_parts <= nat.report.num_parts);
        assert!(
            dagp.report.comm.bytes_sent <= nat.report.comm.bytes_sent,
            "dagP moved {} bytes, Nat {} bytes",
            dagp.report.comm.bytes_sent,
            nat.report.comm.bytes_sent
        );
    }

    #[test]
    fn report_counts_ranks_parts_and_exchanges() {
        let circuit = generators::by_name("qaoa", 9);
        let run = check(&circuit, 8, Strategy::DagP);
        assert_eq!(run.report.num_ranks, 8);
        assert_eq!(run.report.num_parts, run.partition.num_parts());
        assert!(run.report.num_exchanges >= run.report.num_parts.saturating_sub(1));
        assert!(run.report.avg_comm_time_s >= 0.0);
        assert!(run.report.compute_time_s > 0.0);
    }

    #[test]
    fn random_circuits_match_flat() {
        for seed in 0..3 {
            let circuit = generators::random_circuit(9, 60, seed);
            check(&circuit, 4, Strategy::DagP);
        }
    }

    #[test]
    fn fused_and_unfused_distributed_runs_agree() {
        for name in ["qft", "ising"] {
            let circuit = generators::by_name(name, 9);
            let expected = run_circuit(&circuit);
            let unfused = DistributedSimulator::new(DistConfig::new(4).with_fusion(0))
                .run(&circuit)
                .unwrap();
            let fused = DistributedSimulator::new(DistConfig::new(4).with_fusion(4))
                .run(&circuit)
                .unwrap();
            assert!(unfused.state.approx_eq(&expected, 1e-9));
            assert!(fused.state.approx_eq(&expected, 1e-9));
            // Fusion reorganises rank-local compute only: identical schedule.
            assert_eq!(fused.report.num_exchanges, unfused.report.num_exchanges);
            assert_eq!(fused.report.comm.bytes_sent, unfused.report.comm.bytes_sent);
        }
    }

    #[test]
    fn dist_state_redistribute_is_a_permutation() {
        // Drive DistState directly: scatter a recognisable pattern, swap two
        // qubits across the local/process boundary, and verify the state is
        // the same logical vector.
        let circuit = generators::random_circuit(6, 30, 7);
        let expected = run_circuit(&circuit);
        let gates: Vec<Gate> = circuit.gates().to_vec();
        let outcomes =
            run_spmd::<Complex64, Vec<Complex64>, _>(4, NetworkModel::ideal(), |mut comm| {
                let mut state = DistState::new(&mut comm, 6);
                // Apply all gates by making each gate's qubits local on demand
                // (a worst-case per-gate schedule).
                for gate in &gates {
                    state.ensure_local(&gate.qubits);
                    state.apply_gates_local(std::slice::from_ref(gate));
                }
                let full = state.assemble_full_state();
                full.into_amplitudes()
            });
        for amps in outcomes {
            let got = StateVector::from_amplitudes(amps);
            assert!(got.approx_eq(&expected, 1e-9));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_ranks_rejected() {
        let circuit = generators::cat_state(6);
        let _ = DistributedSimulator::new(DistConfig::new(3)).run(&circuit);
    }
}

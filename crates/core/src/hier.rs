//! The single-node hierarchical simulator: the Gather–Execute–Scatter engine
//! of Sec. III-B/C and Algorithm 1.
//!
//! The circuit is partitioned into acyclic parts; parts are executed in a
//! topological order of the quotient graph. For each part, an *inner* state
//! vector over the part's working-set qubits is created, and for every
//! assignment of the remaining (free) qubits the corresponding amplitudes are
//! gathered from the *outer* state vector, the part's gates (remapped onto
//! the inner register) are applied, and the results are scattered back.
//!
//! Because the inner state vector is sized to fit a faster memory level, the
//! repeated passes over the outer vector are the only DRAM-bound phase; the
//! gate arithmetic itself runs cache-resident — the locality argument the
//! paper's Table II quantifies.

use crate::exec::ExecControl;
use crate::fusedplan::{FusedPart, FusedSinglePlan};
use crate::metrics::RunReport;
use hisvsim_circuit::Circuit;
use hisvsim_dag::{CircuitDag, Partition};
use hisvsim_partition::{PartitionBuildError, Strategy};
use hisvsim_statevec::{
    ApplyOptions, CancelToken, Cancelled, FusedCircuit, FusionStrategy, GatherMap, KernelDispatch,
    StateVector, DEFAULT_FUSION_WIDTH,
};
use rayon::prelude::*;
use std::time::Instant;

/// Configuration of the hierarchical engine.
#[derive(Debug, Clone, Copy)]
pub struct HierConfig {
    /// Working-set limit `Lm` (max qubits per part / inner state vector).
    pub limit: usize,
    /// Partitioning strategy.
    pub strategy: Strategy,
    /// Parallelise the gather–execute–scatter loop over free-qubit
    /// assignments with rayon (each assignment's inner vector is
    /// independent).
    pub parallel: bool,
    /// Gate-fusion width for the inner circuits (0 disables fusion and
    /// restores the one-pass-per-gate execution of the unfused engine).
    pub fusion: usize,
    /// How fusion groups are discovered (window scan, DAG antichains, or
    /// auto selection).
    pub fusion_strategy: FusionStrategy,
    /// Kernel dispatch for every inner-state sweep (auto-detected SIMD by
    /// default; forced scalar for differential validation).
    pub kernel_dispatch: KernelDispatch,
}

impl HierConfig {
    /// A configuration with the given limit, dagP strategy, parallel
    /// execution, default fusion width.
    pub fn new(limit: usize) -> Self {
        Self {
            limit,
            strategy: Strategy::DagP,
            parallel: true,
            fusion: DEFAULT_FUSION_WIDTH,
            fusion_strategy: FusionStrategy::default(),
            kernel_dispatch: KernelDispatch::default(),
        }
    }

    /// Same configuration with a different strategy.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Same configuration with parallelism switched on or off.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Same configuration with a different fusion width (0 = unfused).
    pub fn with_fusion(mut self, fusion: usize) -> Self {
        self.fusion = fusion;
        self
    }

    /// Same configuration with a different fusion strategy (see
    /// [`FusionStrategy`]).
    pub fn with_fusion_strategy(mut self, strategy: FusionStrategy) -> Self {
        self.fusion_strategy = strategy;
        self
    }

    /// Same configuration with a different kernel dispatch (see
    /// [`KernelDispatch`]).
    pub fn with_kernel_dispatch(mut self, dispatch: KernelDispatch) -> Self {
        self.kernel_dispatch = dispatch;
        self
    }
}

/// Result of a hierarchical run.
#[derive(Debug, Clone)]
pub struct HierRun {
    /// The final state vector.
    pub state: StateVector,
    /// Timing and structure metrics.
    pub report: RunReport,
    /// The partition that was executed.
    pub partition: Partition,
}

/// The single-node hierarchical simulator.
#[derive(Debug, Clone, Copy)]
pub struct HierarchicalSimulator {
    config: HierConfig,
}

impl HierarchicalSimulator {
    /// Create a simulator with the given configuration.
    pub fn new(config: HierConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> HierConfig {
        self.config
    }

    /// Partition and run `circuit` from `|0…0⟩`.
    pub fn run(&self, circuit: &Circuit) -> Result<HierRun, PartitionBuildError> {
        let dag = CircuitDag::from_circuit(circuit);
        let partition = self.config.strategy.partition(&dag, self.config.limit)?;
        Ok(self.run_with_partition(circuit, &dag, partition))
    }

    /// Run `circuit` against a precomputed partition *plan* (e.g. one served
    /// by the runtime's plan cache), rebuilding only the DAG — which is cheap
    /// next to partitioning. The plan must belong to this circuit's
    /// structure; [`Partition::validate`] is the caller's tool when the plan
    /// comes from an untrusted source.
    pub fn run_with_plan(&self, circuit: &Circuit, plan: &Partition) -> HierRun {
        let dag = CircuitDag::from_circuit(circuit);
        self.run_with_partition(circuit, &dag, plan.clone())
    }

    /// Run `circuit` with an externally supplied partition (used by the
    /// benchmark harness to reuse one partition across repetitions). Fuses
    /// each part's inner circuit first unless `config.fusion` is 0.
    pub fn run_with_partition(
        &self,
        circuit: &Circuit,
        dag: &CircuitDag,
        partition: Partition,
    ) -> HierRun {
        if self.config.fusion > 0 {
            let plan = FusedSinglePlan::build_with_strategy(
                circuit,
                dag,
                partition,
                self.config.fusion,
                self.config.fusion_strategy,
            );
            return self.run_with_fused_plan(circuit, &plan);
        }
        let start = Instant::now();
        let mut state = StateVector::zero_state(circuit.num_qubits());
        let order = partition.execution_order(dag);
        let parts = partition.gates_by_part();

        for &part in &order {
            execute_part(
                &mut state,
                circuit,
                dag,
                &parts[part],
                self.config.parallel,
                self.config.kernel_dispatch,
            );
        }

        let elapsed = start.elapsed().as_secs_f64();
        let report = self.make_report(circuit, partition.num_parts(), elapsed);
        HierRun {
            state,
            report,
            partition,
        }
    }

    /// Run `circuit` against a prefused plan (e.g. one served by the
    /// runtime's plan cache): no DAG rebuild, no partitioning, no fusion —
    /// only the gather–execute–scatter sweeps remain.
    pub fn run_with_fused_plan(&self, circuit: &Circuit, plan: &FusedSinglePlan) -> HierRun {
        self.run_with_fused_plan_controlled(circuit, plan, &ExecControl::default())
            .expect("an inert control cannot cancel")
    }

    /// [`HierarchicalSimulator::run_with_fused_plan`] under an
    /// [`ExecControl`]: the sweep polls the control's cancel token between
    /// parts *and* between gather assignments (so even a single-part run of
    /// a wide circuit stops within one assignment), and reports
    /// `(gates_done, gates_total)` after each completed part plus — for
    /// long parts — at sub-part granularity, interpolated from the
    /// fraction of gather assignments swept.
    pub fn run_with_fused_plan_controlled(
        &self,
        circuit: &Circuit,
        plan: &FusedSinglePlan,
        control: &ExecControl,
    ) -> Result<HierRun, Cancelled> {
        let start = Instant::now();
        let total_gates: u64 = plan
            .parts
            .iter()
            .map(|p| p.inner.source_gates() as u64)
            .sum();
        let mut state = StateVector::zero_state(circuit.num_qubits());
        let mut gates_done = 0u64;
        for part in &plan.parts {
            control.check()?;
            let part_gates = part.inner.source_gates() as u64;
            let before = gates_done;
            let on_assignments = |done: u64, total: u64| {
                control.report_progress(before + part_gates * done / total.max(1), total_gates);
            };
            execute_part_fused_controlled(
                &mut state,
                part,
                self.config.parallel,
                self.config.kernel_dispatch,
                Some(&SweepControl {
                    cancel: &control.cancel,
                    on_assignments: Some(&on_assignments),
                }),
            )?;
            gates_done += part_gates;
            control.report_progress(gates_done, total_gates);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let report = self.make_report(circuit, plan.partition.num_parts(), elapsed);
        Ok(HierRun {
            state,
            report,
            partition: plan.partition.clone(),
        })
    }

    fn make_report(&self, circuit: &Circuit, num_parts: usize, elapsed: f64) -> RunReport {
        let mut report = RunReport::single_node(
            "hier",
            self.config.strategy.name(),
            circuit.name.clone(),
            circuit.num_qubits(),
            circuit.num_gates(),
        );
        report.num_parts = num_parts;
        report.total_time_s = elapsed;
        report.compute_time_s = elapsed;
        report
    }
}

/// Execute one part against the outer state via Gather–Execute–Scatter
/// (Algorithm 1). Exposed for reuse by the distributed engines, which run the
/// same loop on each rank's local slice.
pub fn execute_part(
    outer: &mut StateVector,
    circuit: &Circuit,
    dag: &CircuitDag,
    part_gates: &[usize],
    parallel: bool,
    dispatch: KernelDispatch,
) {
    if part_gates.is_empty() {
        return;
    }
    let working_set: Vec<usize> = dag.working_set_of_gates(part_gates).into_iter().collect();
    let map = GatherMap::new(outer.num_qubits(), &working_set);
    let inner_circuit = circuit
        .subcircuit(part_gates)
        .remap_qubits(&map.remap_table(), map.inner_qubits());
    let opts = ApplyOptions::sequential().with_dispatch(dispatch);
    sweep_assignments(outer, &map, parallel, None, |inner| {
        hisvsim_statevec::kernels::apply_circuit_with(inner, &inner_circuit, &opts);
    })
    .expect("uncancellable sweep cannot abort");
}

/// Execute one prefused part via Gather–Execute–Scatter: the same sweep as
/// [`execute_part`], but the inner circuit is already fused (one pass per
/// fused op instead of per gate) and the parallel path reuses one inner
/// buffer per chunk of assignments instead of allocating per assignment.
pub fn execute_part_fused(
    outer: &mut StateVector,
    part: &FusedPart,
    parallel: bool,
    dispatch: KernelDispatch,
) {
    execute_part_fused_controlled(outer, part, parallel, dispatch, None)
        .expect("uncancellable sweep cannot abort");
}

/// Per-sweep control plumbing: the cancel token polled between gather
/// assignments, plus an optional throttled assignment-progress callback
/// called with `(assignments_done, assignments_total)` — at most ~32 times
/// per sweep, so a wide single-part job still streams progress.
pub struct SweepControl<'a> {
    /// Polled between assignments (sequential) / chunks (parallel).
    pub cancel: &'a CancelToken,
    /// Throttled sub-part progress sink.
    pub on_assignments: Option<&'a (dyn Fn(u64, u64) + Sync)>,
}

/// [`execute_part_fused`] with an optional [`SweepControl`]: the cancel
/// token is polled between gather assignments and assignment progress is
/// reported through the control. On cancellation the outer vector is left
/// partially updated — the caller abandons it.
pub fn execute_part_fused_controlled(
    outer: &mut StateVector,
    part: &FusedPart,
    parallel: bool,
    dispatch: KernelDispatch,
    control: Option<&SweepControl<'_>>,
) -> Result<(), Cancelled> {
    let map = GatherMap::new(outer.num_qubits(), &part.working_set);
    let inner_circuit: &FusedCircuit = &part.inner;
    let opts = ApplyOptions::sequential().with_dispatch(dispatch);
    sweep_assignments(outer, &map, parallel, control, |inner| {
        inner_circuit.apply(inner, &opts);
    })
}

/// The Gather–Execute–Scatter sweep shared by the fused and unfused part
/// executors: run `execute` against the inner vector of every free-qubit
/// assignment of `map`.
///
/// Each assignment touches a disjoint set of outer indices (guaranteed by
/// [`GatherMap`]), so the parallel path shares the outer vector through a
/// raw pointer and splits assignments into chunks — several per thread, so
/// parts with few assignments still use every core, while each chunk reuses
/// one inner scratch buffer (the gather overwrites every inner amplitude,
/// making reuse safe).
fn sweep_assignments<F>(
    outer: &mut StateVector,
    map: &GatherMap,
    parallel: bool,
    control: Option<&SweepControl<'_>>,
    execute: F,
) -> Result<(), Cancelled>
where
    F: Fn(&mut StateVector) + Sync,
{
    let assignments = 1usize << map.num_free_qubits();
    let cancel = control.map(|c| c.cancel);
    // Throttle sub-part progress to ~32 reports per sweep.
    let progress_step = (assignments as u64 / 32).max(1);
    let report = |done: u64| {
        if let Some(on) = control.and_then(|c| c.on_assignments) {
            if done.is_multiple_of(progress_step) {
                on(done, assignments as u64);
            }
        }
    };
    if parallel && assignments >= 2 {
        let threads = rayon::current_num_threads().max(1);
        let per_chunk = (assignments / (threads * 4)).clamp(1, 8);
        let outer_ptr = OuterPtr(outer.amplitudes_mut().as_mut_ptr());
        let chunks = assignments.div_ceil(per_chunk);
        let done = std::sync::atomic::AtomicU64::new(0);
        (0..chunks).into_par_iter().for_each(|chunk| {
            // A cancelled sweep skips remaining chunks (rayon offers no
            // early exit); the partial outer state is abandoned anyway.
            if cancel.is_some_and(|c| c.is_cancelled()) {
                return;
            }
            let mut inner = StateVector::uninitialized(map.inner_qubits());
            let inner_len = inner.len();
            let first = chunk * per_chunk;
            let last = (first + per_chunk).min(assignments);
            for assignment in first..last {
                // Gather.
                for j in 0..inner_len {
                    let idx = map.outer_index(assignment, j);
                    // SAFETY: outer indices of different assignments are
                    // disjoint.
                    inner.amplitudes_mut()[j] = unsafe { outer_ptr.read(idx) };
                }
                execute(&mut inner);
                // Scatter.
                for j in 0..inner_len {
                    let idx = map.outer_index(assignment, j);
                    unsafe { outer_ptr.write(idx, inner.amp(j)) };
                }
                let completed = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
                report(completed);
            }
        });
    } else {
        let mut inner = StateVector::uninitialized(map.inner_qubits());
        for assignment in 0..assignments {
            if let Some(cancel) = cancel {
                cancel.check()?;
            }
            map.gather_into(outer, assignment, &mut inner);
            execute(&mut inner);
            map.scatter(&inner, outer, assignment);
            report(assignment as u64 + 1);
        }
    }
    match cancel {
        Some(cancel) => cancel.check(),
        None => Ok(()),
    }
}

/// Raw-pointer wrapper so the per-assignment closures can write disjoint
/// regions of the outer vector in parallel.
#[derive(Clone, Copy)]
struct OuterPtr(*mut hisvsim_circuit::Complex64);
unsafe impl Send for OuterPtr {}
unsafe impl Sync for OuterPtr {}
impl OuterPtr {
    /// # Safety
    /// `idx` must be in bounds and not concurrently accessed by another
    /// assignment (GatherMap guarantees disjointness across assignments).
    unsafe fn read(&self, idx: usize) -> hisvsim_circuit::Complex64 {
        *self.0.add(idx)
    }
    /// # Safety
    /// See [`OuterPtr::read`].
    unsafe fn write(&self, idx: usize, v: hisvsim_circuit::Complex64) {
        *self.0.add(idx) = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;
    use hisvsim_statevec::run_circuit;

    fn check_against_flat(circuit: &Circuit, limit: usize, strategy: Strategy, parallel: bool) {
        let expected = run_circuit(circuit);
        let sim = HierarchicalSimulator::new(
            HierConfig::new(limit)
                .with_strategy(strategy)
                .with_parallel(parallel),
        );
        let run = sim.run(circuit).unwrap();
        assert!(
            run.state.approx_eq(&expected, 1e-9),
            "{} limit={limit} strategy={} parallel={parallel}: hierarchical result diverges (max diff {})",
            circuit.name,
            strategy.name(),
            run.state.max_abs_diff(&expected)
        );
        assert_eq!(run.report.num_parts, run.partition.num_parts());
        assert!(run.report.total_time_s >= 0.0);
    }

    #[test]
    fn hierarchical_matches_flat_on_benchmark_suite() {
        for name in generators::FAMILY_NAMES {
            let circuit = generators::by_name(name, 9);
            for limit in [4usize, 6, 9] {
                check_against_flat(&circuit, limit, Strategy::DagP, false);
            }
        }
    }

    #[test]
    fn all_strategies_produce_the_same_state() {
        for name in ["qft", "grover", "qaoa"] {
            let circuit = generators::by_name(name, 8);
            for strategy in Strategy::ALL {
                check_against_flat(&circuit, 5, strategy, false);
            }
        }
    }

    #[test]
    fn parallel_assignment_loop_matches_sequential() {
        for name in ["qft", "adder", "ising"] {
            let circuit = generators::by_name(name, 10);
            check_against_flat(&circuit, 5, Strategy::DagP, true);
        }
    }

    #[test]
    fn single_part_run_equals_flat_simulation() {
        let circuit = generators::by_name("bv", 8);
        let sim = HierarchicalSimulator::new(HierConfig::new(8));
        let run = sim.run(&circuit).unwrap();
        assert_eq!(run.report.num_parts, 1);
        assert!(run.state.approx_eq(&run_circuit(&circuit), 1e-10));
    }

    #[test]
    fn random_circuits_match_flat() {
        for seed in 0..5 {
            let circuit = generators::random_circuit(8, 80, seed);
            check_against_flat(&circuit, 4, Strategy::DagP, seed % 2 == 0);
        }
    }

    #[test]
    fn report_carries_circuit_metadata() {
        let circuit = generators::by_name("cc", 9);
        let run = HierarchicalSimulator::new(HierConfig::new(5))
            .run(&circuit)
            .unwrap();
        assert_eq!(run.report.circuit, circuit.name);
        assert_eq!(run.report.num_qubits, 9);
        assert_eq!(run.report.num_gates, circuit.num_gates());
        assert_eq!(run.report.engine, "hier");
        assert_eq!(run.report.strategy, "dagP");
    }

    #[test]
    fn limit_below_max_arity_is_an_error() {
        let circuit = generators::adder(8);
        let result = HierarchicalSimulator::new(HierConfig::new(2)).run(&circuit);
        assert!(matches!(
            result,
            Err(PartitionBuildError::GateExceedsLimit { .. })
        ));
    }

    #[test]
    fn fused_and_unfused_execution_agree() {
        for name in ["qft", "adder", "ising", "qaoa"] {
            let circuit = generators::by_name(name, 9);
            let expected = run_circuit(&circuit);
            let unfused = HierarchicalSimulator::new(HierConfig::new(5).with_fusion(0))
                .run(&circuit)
                .unwrap();
            for width in [1usize, 3, 5] {
                let fused = HierarchicalSimulator::new(HierConfig::new(5).with_fusion(width))
                    .run(&circuit)
                    .unwrap();
                assert!(fused.state.approx_eq(&expected, 1e-9));
                assert!(fused.state.approx_eq(&unfused.state, 1e-9));
                assert_eq!(fused.report.num_parts, unfused.report.num_parts);
            }
        }
    }

    #[test]
    fn prefused_plan_execution_matches_planning_inline() {
        use crate::fusedplan::FusedSinglePlan;
        let circuit = generators::by_name("grover", 9);
        let sim = HierarchicalSimulator::new(HierConfig::new(5));
        let dag = CircuitDag::from_circuit(&circuit);
        let partition = sim.config().strategy.partition(&dag, 5).unwrap();
        let plan = FusedSinglePlan::build(&circuit, &dag, partition, sim.config().fusion);
        let via_plan = sim.run_with_fused_plan(&circuit, &plan);
        let inline = sim.run(&circuit).unwrap();
        // Same partition, same fused ops, same execution order: bit-identical.
        assert_eq!(via_plan.state, inline.state);
    }

    #[test]
    fn norm_is_preserved_through_many_parts() {
        let circuit = generators::by_name("qpe", 10);
        let run = HierarchicalSimulator::new(HierConfig::new(3))
            .run(&circuit)
            .unwrap();
        assert!((run.state.norm_sqr() - 1.0).abs() < 1e-9);
        assert!(run.report.num_parts > 1);
    }
}

//! A minimal blocking HTTP/1.1 GET client over [`std::net`].
//!
//! Exists for the test suite and the `hisvsim-http check` CI probe — both
//! need to exercise the server through a *real* TCP round trip without
//! pulling an HTTP library into the vendored dependency set. It speaks
//! exactly the subset the server emits: `Connection: close` responses
//! with a `Content-Length` header.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header lines as `(lower-cased name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy).
    pub fn body_string(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// A header value by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Issue `GET <path>` against `addr` (a `host:port`) and read the full
/// response. 10-second socket timeouts on both directions.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Send raw request bytes and read whatever comes back — the test suite's
/// tool for malformed-request and oversized-header probes.
pub fn http_raw(addr: impl ToSocketAddrs, request: &[u8]) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.write_all(request)?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator in response"))?;
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|line| {
            line.split_once(':')
                .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        })
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_head_and_body() {
        let raw = b"HTTP/1.1 404 Not Found\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}";
        let response = parse_response(raw).expect("parses");
        assert_eq!(response.status, 404);
        assert_eq!(response.header("content-type"), Some("application/json"));
        assert_eq!(response.body_string(), "{}");
    }
}

//! # hisvsim-http
//!
//! The observability front door for a running
//! [`SimService`](hisvsim_service::SimService): a hand-rolled HTTP/1.1
//! server over [`std::net`] (no new dependencies — the same idiom as
//! `hisvsim-net`'s TCP wire protocol) that makes the in-process
//! observability substrate reachable from the outside:
//!
//! | Endpoint | What it serves |
//! |---|---|
//! | `GET /metrics` | The unified registry in Prometheus text format (strict-parser clean) |
//! | `GET /healthz` | Liveness: `200 ok` while the process serves |
//! | `GET /readyz` | Readiness JSON: worker pool up, plan-cache / profile warm state |
//! | `GET /jobs/<id>` | Status JSON: phase, progress, `EngineDecision` audit, predicted-vs-measured verdict |
//! | `GET /jobs/<id>/trace` | Chrome trace-event JSON (Perfetto-compatible) of the job's merged timeline + spans |
//! | `GET /jobs/<id>/profile` | The job's measured `CostProfile` delta as JSON |
//!
//! The server instruments itself into the registry it serves
//! (`hisvsim_http_requests_total{endpoint,code}` and the
//! `hisvsim_http_request_seconds` histogram), so scraping `/metrics` also
//! observes the front door. Per-job documents survive job completion via
//! the service's bounded artifact LRU
//! ([`hisvsim_service::JobArtifacts`]); requests for a job still running
//! answer `409` so clients can distinguish "retry later" from "gone".
//!
//! ## Example
//!
//! ```
//! use hisvsim_circuit::generators;
//! use hisvsim_http::{client, HttpServer};
//! use hisvsim_runtime::{EngineSelector, SchedulerConfig, SimJob};
//! use hisvsim_service::prelude::*;
//! use std::sync::Arc;
//!
//! let service = Arc::new(SimService::start(ServiceConfig::new().with_scheduler(
//!     SchedulerConfig::default()
//!         .with_workers(2)
//!         .with_selector(EngineSelector::scaled(4, 8)),
//! )));
//! let job = service.submit(SimJob::new(generators::qft(6)));
//! job.wait().expect("job succeeded");
//! let server = HttpServer::start(Arc::clone(&service), "127.0.0.1:0").unwrap();
//! let health = client::http_get(server.local_addr(), "/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! let trace = client::http_get(server.local_addr(), &format!("/jobs/{}/trace", job.id())).unwrap();
//! assert_eq!(trace.status, 200);
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod server;

pub use client::{http_get, http_raw, HttpResponse};
pub use server::{HttpServer, MAX_REQUEST_HEADER_BYTES};

//! The HTTP/1.1 server: accept loop, request parsing, routing and
//! self-instrumentation.
//!
//! Deliberately hand-rolled over [`std::net`] in the same spirit as
//! `hisvsim-net`'s wire protocol — the workspace vendors its dependencies,
//! so there is no async runtime or HTTP library to lean on, and none is
//! needed: every endpoint is a small read-only snapshot, connections are
//! `Connection: close`, and a thread per request keeps the code obvious.

use hisvsim_obs::{log, Registry};
use hisvsim_service::SimService;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers. Beyond this the server
/// answers `431 Request Header Fields Too Large` and closes.
pub const MAX_REQUEST_HEADER_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a stalled client cannot pin its
/// handler thread longer than this.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

const LOG_TARGET: &str = "hisvsim-http";

/// The observability front door over a running [`SimService`]. Binds a
/// TCP listener, serves until dropped or [`HttpServer::shutdown`].
pub struct HttpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `service` on a background accept thread. The server's
    /// request counters and latency histogram register into
    /// [`SimService::registry`] — the same registry `/metrics` renders, so
    /// the front door measures itself with the instruments it exposes.
    pub fn start(service: Arc<SimService>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let service = Arc::clone(&service);
            std::thread::spawn(move || accept_loop(&listener, &service, &stop))
        };
        log::info(
            LOG_TARGET,
            "listening",
            &[("addr", &local_addr.to_string())],
        );
        Ok(HttpServer {
            local_addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stop accepting, wake the accept thread and join it. In-flight
    /// request threads finish on their own (they hold no server state).
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept call with a throwaway connection.
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
            log::info(
                LOG_TARGET,
                "shut down",
                &[("addr", &self.local_addr.to_string())],
            );
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<SimService>, stop: &Arc<AtomicBool>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(error) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                log::warn(
                    LOG_TARGET,
                    "accept failed",
                    &[("error", &error.to_string())],
                );
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let service = Arc::clone(service);
        std::thread::spawn(move || {
            let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
            let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
            handle_connection(&service, stream);
        });
    }
}

/// One parsed request head (the server never reads GET bodies).
enum Request {
    Ok { method: String, path: String },
    TooLarge,
    Malformed,
}

fn read_request(stream: &mut TcpStream) -> Request {
    // Oversized heads are still drained (up to a hard cap) before the 431
    // goes out: closing with unread bytes in the receive buffer makes the
    // kernel reset the connection, and the client would lose the response.
    const DRAIN_CAP_BYTES: usize = 64 * 1024;
    let mut head = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        if head.len() > DRAIN_CAP_BYTES {
            return Request::TooLarge;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => return Request::Malformed,
        }
    }
    if head.len() > MAX_REQUEST_HEADER_BYTES {
        return Request::TooLarge;
    }
    let text = String::from_utf8_lossy(&head);
    let request_line = match text.lines().next() {
        Some(line) if !line.trim().is_empty() => line,
        _ => return Request::Malformed,
    };
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some(method), Some(path), Some(version)) if version.starts_with("HTTP/") => Request::Ok {
            method: method.to_string(),
            path: path.to_string(),
        },
        _ => Request::Malformed,
    }
}

/// A response about to be written: status + reason, content type, body.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
}

impl Response {
    fn json(status: u16, reason: &'static str, body: String) -> Self {
        Response {
            status,
            reason,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    fn error(status: u16, reason: &'static str, message: &str) -> Self {
        Response::json(
            status,
            reason,
            to_json(Value::Object(vec![(
                "error".to_string(),
                Value::Str(message.to_string()),
            )])),
        )
    }
}

/// Serialize a vendored-serde [`Value`] tree (the same bridge idiom as
/// `hisvsim_obs::chrome_trace_json`).
fn to_json(value: Value) -> String {
    struct Raw(Value);
    impl serde::Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&Raw(value)).expect("JSON serialisation cannot fail")
}

fn handle_connection(service: &SimService, mut stream: TcpStream) {
    let start = Instant::now();
    let (endpoint, response) = match read_request(&mut stream) {
        Request::Ok { method, path } => {
            let path = path.split('?').next().unwrap_or("").to_string();
            let endpoint = endpoint_label(&path);
            if method != "GET" {
                (
                    endpoint,
                    Response::error(405, "Method Not Allowed", "only GET is supported"),
                )
            } else {
                (endpoint, route(service, &path))
            }
        }
        Request::TooLarge => (
            "malformed",
            Response::error(
                431,
                "Request Header Fields Too Large",
                "request head exceeds 8 KiB",
            ),
        ),
        Request::Malformed => (
            "malformed",
            Response::error(400, "Bad Request", "malformed HTTP request line"),
        ),
    };
    let status = response.status;
    write_response(&mut stream, &response);
    observe_request(service, endpoint, status, start.elapsed().as_secs_f64());
}

/// Collapse a concrete path onto its route template so the request
/// counter's label cardinality stays bounded no matter what clients send.
fn endpoint_label(path: &str) -> &'static str {
    match path {
        "/metrics" => "/metrics",
        "/healthz" => "/healthz",
        "/readyz" => "/readyz",
        _ => match job_route(path) {
            Some((_, "")) => "/jobs/{id}",
            Some((_, "trace")) => "/jobs/{id}/trace",
            Some((_, "profile")) => "/jobs/{id}/profile",
            _ => "other",
        },
    }
}

/// Parse `/jobs/<id>[/<sub>]` into `(id, sub)`; `sub` is `""` for the
/// bare status route. `None` when the path is not a job route (including
/// non-numeric ids — those fall through to 404).
fn job_route(path: &str) -> Option<(u64, &str)> {
    let rest = path.strip_prefix("/jobs/")?;
    let (id_part, sub) = match rest.split_once('/') {
        Some((id_part, sub)) => (id_part, sub),
        None => (rest, ""),
    };
    let id = id_part.parse::<u64>().ok()?;
    if matches!(sub, "" | "trace" | "profile") {
        Some((id, sub))
    } else {
        None
    }
}

fn route(service: &SimService, path: &str) -> Response {
    match path {
        "/metrics" => Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: service.metrics_text().into_bytes(),
        },
        "/healthz" => Response {
            status: 200,
            reason: "OK",
            content_type: "text/plain; charset=utf-8",
            body: b"ok\n".to_vec(),
        },
        "/readyz" => readyz(service),
        _ => match job_route(path) {
            Some((id, "")) => match service.job_status(id) {
                Some(report) => Response::json(
                    200,
                    "OK",
                    serde_json::to_string(&report).expect("status report serialises"),
                ),
                None => Response::error(404, "Not Found", "unknown job id"),
            },
            Some((id, "trace")) => artifact_response(service, id, service.job_trace_json(id)),
            Some((id, "profile")) => artifact_response(service, id, service.job_profile_json(id)),
            _ => Response::error(404, "Not Found", "no such endpoint"),
        },
    }
}

/// Serve a per-job artifact document, distinguishing "not finished yet"
/// (409, retry later) from "never existed / evicted / nothing captured"
/// (404).
fn artifact_response(service: &SimService, id: u64, artifact: Option<String>) -> Response {
    match artifact {
        Some(body) => Response::json(200, "OK", body),
        None => match service.job_status(id) {
            Some(report) if !report.is_terminal() => Response::error(
                409,
                "Conflict",
                "job still running; artifacts appear at completion",
            ),
            Some(_) => Response::error(404, "Not Found", "no artifact retained for this job"),
            None => Response::error(404, "Not Found", "unknown job id"),
        },
    }
}

/// Readiness: the worker pool must be up; the warm-state fields report
/// how much of the plan-cache / measured-profile substrate a restart has
/// already recovered (informational — a cold cache is still ready).
fn readyz(service: &SimService) -> Response {
    let stats = service.stats();
    let cache = service.cache_stats();
    let workers = service.worker_count();
    let ready = workers > 0;
    let body = to_json(Value::Object(vec![
        ("ready".to_string(), Value::Bool(ready)),
        ("workers".to_string(), Value::Int(workers as i128)),
        (
            "queue_depth".to_string(),
            Value::Int(stats.queue_depth as i128),
        ),
        (
            "plan_cache_entries".to_string(),
            Value::Int(cache.entries as i128),
        ),
        (
            "plan_cache_warm".to_string(),
            Value::Bool(cache.entries > 0),
        ),
        (
            "profile_warm".to_string(),
            Value::Bool(service.profile_store().warm()),
        ),
    ]));
    if ready {
        Response::json(200, "OK", body)
    } else {
        Response::json(503, "Service Unavailable", body)
    }
}

fn write_response(stream: &mut TcpStream, response: &Response) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.reason,
        response.content_type,
        response.body.len()
    );
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(&response.body))
        .and_then(|_| stream.flush());
}

/// Record one served request into the service's registry: a labeled
/// counter per (endpoint, status) and a shared latency histogram — the
/// server shows up on the `/metrics` page it serves.
fn observe_request(service: &SimService, endpoint: &str, status: u16, seconds: f64) {
    let registry: Registry = service.registry();
    registry
        .labeled_counter(
            "hisvsim_http_requests_total",
            "HTTP requests served, by route template and status code.",
            &[("endpoint", endpoint), ("code", &status.to_string())],
        )
        .inc();
    registry
        .histogram(
            "hisvsim_http_request_seconds",
            "Wall time from request receipt to response write, all endpoints.",
        )
        .observe(seconds);
    log::debug(
        LOG_TARGET,
        "request",
        &[
            ("endpoint", endpoint),
            ("code", &status.to_string()),
            ("seconds", &format!("{seconds:.6}")),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_labels_are_bounded() {
        assert_eq!(endpoint_label("/metrics"), "/metrics");
        assert_eq!(endpoint_label("/jobs/17"), "/jobs/{id}");
        assert_eq!(endpoint_label("/jobs/17/trace"), "/jobs/{id}/trace");
        assert_eq!(endpoint_label("/jobs/17/profile"), "/jobs/{id}/profile");
        assert_eq!(endpoint_label("/jobs/abc"), "other");
        assert_eq!(endpoint_label("/jobs/1/bogus"), "other");
        assert_eq!(endpoint_label("/anything/else"), "other");
    }

    #[test]
    fn job_routes_parse_ids_strictly() {
        assert_eq!(job_route("/jobs/0"), Some((0, "")));
        assert_eq!(job_route("/jobs/42/trace"), Some((42, "trace")));
        assert_eq!(job_route("/jobs/42/profile"), Some((42, "profile")));
        assert_eq!(job_route("/jobs/"), None);
        assert_eq!(job_route("/jobs/-1"), None);
        assert_eq!(job_route("/jobs/1/x"), None);
        assert_eq!(job_route("/metrics"), None);
    }
}

//! The `hisvsim-http` binary: serve a demo-loaded job service over the
//! observability front door, or probe a running server (CI's end-to-end
//! check).
//!
//! ```text
//! hisvsim-http serve [--port P] [--qubits N] [--jobs J] [--trace]
//! hisvsim-http check <host:port> [job_id]
//! ```
//!
//! `serve` starts a [`SimService`], runs a few jobs to completion so the
//! per-job endpoints have something to say, prints the listen address and
//! serves until killed. `--trace` enables the span recorder and per-job
//! trace artifacts, making `/jobs/<id>/trace` downloads carry kernel
//! sweeps and not just the phase timeline.
//!
//! `check` exercises a live server through real TCP GETs: `/healthz` and
//! `/readyz` must answer 200, `/metrics` must pass the strict Prometheus
//! validator and contain the server's own request counters, and (when a
//! job id is given) the job's trace download must parse as Chrome
//! trace-event JSON with the expected phases. Exits non-zero on any
//! violation, so CI can gate on it.

use hisvsim_circuit::generators;
use hisvsim_http::{client, HttpServer};
use hisvsim_obs::log;
use hisvsim_runtime::{SchedulerConfig, SimJob};
use hisvsim_service::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

const LOG_TARGET: &str = "hisvsim-http";

fn usage() -> ExitCode {
    eprintln!("usage: hisvsim-http serve [--port P] [--qubits N] [--jobs J] [--trace]");
    eprintln!("       hisvsim-http check <host:port> [job_id]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("check") => check(&args[1..]),
        _ => usage(),
    }
}

fn serve(args: &[String]) -> ExitCode {
    let mut port = 0u16;
    let mut qubits = 16usize;
    let mut jobs = 2usize;
    let mut trace = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--port" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => port = v,
                None => return usage(),
            },
            "--qubits" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => qubits = v,
                None => return usage(),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => return usage(),
            },
            "--trace" => trace = true,
            _ => return usage(),
        }
    }
    if trace {
        hisvsim_obs::set_enabled(true);
    }
    let service = Arc::new(SimService::start(
        ServiceConfig::new()
            .with_scheduler(SchedulerConfig::default().with_workers(2))
            .with_trace_artifacts(trace),
    ));
    // Run a few jobs to completion so /jobs/<id>{,/trace,/profile} serve
    // real artifacts the moment the listener is up.
    for index in 0..jobs {
        let circuit = if index % 2 == 0 {
            generators::qft(qubits)
        } else {
            generators::by_name("qaoa", qubits)
        };
        let handle = service.submit(SimJob::new(circuit).with_shots(32));
        let id = handle.id();
        match handle.wait() {
            Ok(result) => log::info(
                LOG_TARGET,
                "demo job done",
                &[
                    ("job", &id.to_string()),
                    ("circuit", &result.circuit_name),
                    ("engine", result.engine.name()),
                ],
            ),
            Err(failure) => {
                log::error(
                    LOG_TARGET,
                    "demo job failed",
                    &[("job", &id.to_string()), ("error", &failure.to_string())],
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let server = match HttpServer::start(Arc::clone(&service), ("127.0.0.1", port)) {
        Ok(server) => server,
        Err(error) => {
            log::error(LOG_TARGET, "bind failed", &[("error", &error.to_string())]);
            return ExitCode::FAILURE;
        }
    };
    // Machine-greppable readiness line (CI waits for the port anyway; the
    // address line is for humans and logs).
    println!("hisvsim-http: listening on http://{}", server.local_addr());
    println!("hisvsim-http: demo jobs 0..{jobs} completed; try /metrics, /jobs/0/trace");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn check(args: &[String]) -> ExitCode {
    let Some(base) = args.first() else {
        return usage();
    };
    let addr = base.trim_start_matches("http://").trim_end_matches('/');
    let job_id = args.get(1).and_then(|v| v.parse::<u64>().ok());

    let fail = |what: &str, detail: &str| {
        log::error(
            LOG_TARGET,
            "check failed",
            &[("probe", what), ("detail", detail)],
        );
        eprintln!("check FAILED at {what}: {detail}");
        ExitCode::FAILURE
    };

    match client::http_get(addr, "/healthz") {
        Ok(r) if r.status == 200 => println!("healthz OK"),
        Ok(r) => return fail("/healthz", &format!("status {}", r.status)),
        Err(e) => return fail("/healthz", &e.to_string()),
    }
    match client::http_get(addr, "/readyz") {
        Ok(r) if r.status == 200 => println!("readyz OK: {}", r.body_string()),
        Ok(r) => return fail("/readyz", &format!("status {}", r.status)),
        Err(e) => return fail("/readyz", &e.to_string()),
    }
    match client::http_get(addr, "/metrics") {
        Ok(r) if r.status == 200 => {
            let body = r.body_string();
            if let Err(error) = hisvsim_obs::validate_prometheus(&body) {
                return fail("/metrics", &format!("strict parser rejected: {error}"));
            }
            if !body.contains("hisvsim_http_requests_total{") {
                return fail("/metrics", "no hisvsim_http_requests_total series");
            }
            println!("metrics OK: {} bytes, strict-parser clean", body.len());
        }
        Ok(r) => return fail("/metrics", &format!("status {}", r.status)),
        Err(e) => return fail("/metrics", &e.to_string()),
    }
    if let Some(id) = job_id {
        match client::http_get(addr, &format!("/jobs/{id}")) {
            Ok(r) if r.status == 200 => println!("job {id} status OK: {}", r.body_string()),
            Ok(r) => return fail("/jobs/<id>", &format!("status {}", r.status)),
            Err(e) => return fail("/jobs/<id>", &e.to_string()),
        }
        match client::http_get(addr, &format!("/jobs/{id}/trace")) {
            Ok(r) if r.status == 200 => {
                let body = r.body_string();
                let parsed = match serde_json::value_from_str(&body) {
                    Ok(parsed) => parsed,
                    Err(error) => return fail("/jobs/<id>/trace", &format!("bad JSON: {error:?}")),
                };
                let Some(events) = parsed.get_field("traceEvents").and_then(|e| e.as_array())
                else {
                    return fail("/jobs/<id>/trace", "no traceEvents array");
                };
                for phase in ["plan", "execute", "postprocess"] {
                    let present = events.iter().any(|event| {
                        event.get_field("name").and_then(|n| n.as_str()) == Some(phase)
                    });
                    if !present {
                        return fail("/jobs/<id>/trace", &format!("no {phase} span"));
                    }
                }
                println!("job {id} trace OK: {} events", events.len());
            }
            Ok(r) => return fail("/jobs/<id>/trace", &format!("status {}", r.status)),
            Err(e) => return fail("/jobs/<id>/trace", &e.to_string()),
        }
    }
    println!("all checks passed");
    ExitCode::SUCCESS
}

//! # hisvsim-dag
//!
//! Circuit-DAG machinery for HiSVSIM-RS: the graph model the paper's
//! partitioning strategies operate on.
//!
//! * [`dag`] — [`CircuitDag`]: gate vertices plus per-qubit entry/exit
//!   vertices with qubit-labelled dependency edges, topological orders
//!   (natural and seeded random-DFS), working-set computation, and the
//!   critical path.
//! * [`partition`] — [`Partition`] (per-gate part assignment), the quotient
//!   [`PartGraph`], and validation of the paper's three partitioning
//!   conditions (coverage, working-set limit `Lm`, acyclicity).
//! * [`fusion`] — [`antichain_fusion_groups`]: DAG-driven fusion grouping
//!   along the ready frontier, the structural-commutation covering that
//!   feeds `hisvsim-statevec`'s `FusedCircuit::from_dag`.
//!
//! ## Example
//!
//! ```
//! use hisvsim_circuit::generators;
//! use hisvsim_dag::{CircuitDag, Partition};
//!
//! let circuit = generators::qft(6);
//! let dag = CircuitDag::from_circuit(&circuit);
//! assert_eq!(dag.num_gate_nodes(), circuit.num_gates());
//!
//! // A trivial one-part partition is valid when the limit admits all qubits.
//! let part = Partition::single_part(circuit.num_gates());
//! assert!(part.validate(&dag, 6).is_ok());
//! assert!(part.validate(&dag, 5).is_err());
//! ```

#![warn(missing_docs)]

pub mod dag;
pub mod fusion;
pub mod partition;

pub use dag::{CircuitDag, Edge, NodeId, NodeKind};
pub use fusion::{antichain_fusion_groups, FusionGroup, GateClass};
pub use partition::{PartGraph, Partition, PartitionError};

//! The directed-acyclic-graph representation of a quantum circuit.
//!
//! Following Sec. IV-A of the paper: every computational gate is a vertex; in
//! addition each qubit gets an artificial *entry* vertex (no predecessors,
//! one successor — the first gate that touches the qubit) and an *exit*
//! vertex (no successors, one predecessor). Edges carry the qubit they
//! transport, so for every gate the total incoming edge weight equals the
//! outgoing edge weight and equals the number of qubits the gate touches.
//! Because a qubit is input to at most one gate at a time, each qubit can be
//! traced as a path from its entry vertex to its exit vertex.

use hisvsim_circuit::{Circuit, Qubit};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identifier of a vertex in a [`CircuitDag`] (index into the node arrays).
pub type NodeId = usize;

/// What a DAG vertex represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Artificial source vertex initialising a qubit.
    Entry(Qubit),
    /// Artificial sink vertex consuming a qubit.
    Exit(Qubit),
    /// A computational gate; the payload is the gate's index in the source
    /// circuit's gate list.
    Gate(usize),
}

impl NodeKind {
    /// True for entry/exit vertices (which carry no computation).
    pub fn is_artificial(&self) -> bool {
        !matches!(self, NodeKind::Gate(_))
    }
}

/// A directed edge, labelled with the qubit it carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub from: NodeId,
    /// Destination vertex.
    pub to: NodeId,
    /// The qubit whose dependency this edge represents.
    pub qubit: Qubit,
}

/// The DAG of a circuit: gate vertices plus per-qubit entry/exit vertices,
/// with qubit-labelled dependency edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CircuitDag {
    num_qubits: usize,
    kinds: Vec<NodeKind>,
    /// For each node, the qubits it touches (entry/exit touch exactly one).
    node_qubits: Vec<Vec<Qubit>>,
    succs: Vec<Vec<(NodeId, Qubit)>>,
    preds: Vec<Vec<(NodeId, Qubit)>>,
    /// Node id of each gate, indexed by gate index.
    gate_node: Vec<NodeId>,
    /// Node id of each qubit's entry vertex.
    entry_node: Vec<NodeId>,
    /// Node id of each qubit's exit vertex.
    exit_node: Vec<NodeId>,
}

impl CircuitDag {
    /// Build the DAG of a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_qubits();
        let g = circuit.num_gates();
        // Node layout: entries [0, n), gate nodes [n, n + g), exits [n + g, n + g + n).
        let mut kinds = Vec::with_capacity(n + g + n);
        let mut node_qubits = Vec::with_capacity(n + g + n);
        for q in 0..n {
            kinds.push(NodeKind::Entry(q));
            node_qubits.push(vec![q]);
        }
        for (i, gate) in circuit.gates().iter().enumerate() {
            kinds.push(NodeKind::Gate(i));
            node_qubits.push(gate.qubits.clone());
        }
        for q in 0..n {
            kinds.push(NodeKind::Exit(q));
            node_qubits.push(vec![q]);
        }
        let total = kinds.len();
        let mut succs = vec![Vec::new(); total];
        let mut preds = vec![Vec::new(); total];

        let entry_node: Vec<NodeId> = (0..n).collect();
        let gate_node: Vec<NodeId> = (n..n + g).collect();
        let exit_node: Vec<NodeId> = (n + g..n + g + n).collect();

        // Trace each qubit through the gates: last_producer[q] is the vertex
        // that most recently emitted qubit q.
        let mut last: Vec<NodeId> = entry_node.clone();
        for (i, gate) in circuit.gates().iter().enumerate() {
            let node = gate_node[i];
            for &q in &gate.qubits {
                succs[last[q]].push((node, q));
                preds[node].push((last[q], q));
                last[q] = node;
            }
        }
        for q in 0..n {
            succs[last[q]].push((exit_node[q], q));
            preds[exit_node[q]].push((last[q], q));
        }

        Self {
            num_qubits: n,
            kinds,
            node_qubits,
            succs,
            preds,
            gate_node,
            entry_node,
            exit_node,
        }
    }

    /// Number of qubits of the underlying circuit.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total number of vertices (gates + 2 × qubits).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of computational gate vertices.
    #[inline]
    pub fn num_gate_nodes(&self) -> usize {
        self.gate_node.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(|s| s.len()).sum()
    }

    /// The kind of a vertex.
    #[inline]
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node]
    }

    /// The qubits a vertex touches.
    #[inline]
    pub fn qubits_of(&self, node: NodeId) -> &[Qubit] {
        &self.node_qubits[node]
    }

    /// Successor edges of a vertex, as `(successor, qubit)` pairs.
    #[inline]
    pub fn successors(&self, node: NodeId) -> &[(NodeId, Qubit)] {
        &self.succs[node]
    }

    /// Predecessor edges of a vertex, as `(predecessor, qubit)` pairs.
    #[inline]
    pub fn predecessors(&self, node: NodeId) -> &[(NodeId, Qubit)] {
        &self.preds[node]
    }

    /// Node id of gate `gate_index`.
    #[inline]
    pub fn gate_node(&self, gate_index: usize) -> NodeId {
        self.gate_node[gate_index]
    }

    /// Node id of qubit `q`'s entry vertex.
    #[inline]
    pub fn entry_node(&self, q: Qubit) -> NodeId {
        self.entry_node[q]
    }

    /// Node id of qubit `q`'s exit vertex.
    #[inline]
    pub fn exit_node(&self, q: Qubit) -> NodeId {
        self.exit_node[q]
    }

    /// The gate index of a gate vertex, or `None` for entry/exit vertices.
    #[inline]
    pub fn gate_index(&self, node: NodeId) -> Option<usize> {
        match self.kinds[node] {
            NodeKind::Gate(i) => Some(i),
            _ => None,
        }
    }

    /// All edges of the DAG.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.num_edges());
        for (from, succ) in self.succs.iter().enumerate() {
            for &(to, qubit) in succ {
                out.push(Edge { from, to, qubit });
            }
        }
        out
    }

    /// The working set (distinct qubits) of a set of vertices — the paper's
    /// `L(V_i)`.
    pub fn working_set(&self, nodes: &[NodeId]) -> BTreeSet<Qubit> {
        let mut set = BTreeSet::new();
        for &node in nodes {
            for &q in &self.node_qubits[node] {
                set.insert(q);
            }
        }
        set
    }

    /// The working set of a set of *gate indices* (circuit positions).
    pub fn working_set_of_gates(&self, gate_indices: &[usize]) -> BTreeSet<Qubit> {
        let nodes: Vec<NodeId> = gate_indices.iter().map(|&g| self.gate_node[g]).collect();
        self.working_set(&nodes)
    }

    /// The gate vertices in natural (circuit) order.
    pub fn natural_gate_order(&self) -> Vec<NodeId> {
        self.gate_node.clone()
    }

    /// A random DFS-based topological order of the *gate* vertices.
    ///
    /// The order is a valid topological order of the gate-dependency DAG:
    /// a gate appears only after all of its gate predecessors. Different
    /// seeds explore different tie-breaking choices, which is what the DFS
    /// partitioning strategy samples over.
    pub fn random_dfs_gate_order(&self, seed: u64) -> Vec<NodeId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = self.num_nodes();
        let mut remaining_preds: Vec<usize> = (0..total).map(|v| self.preds[v].len()).collect();
        // Ready stack seeded with the entry vertices, shuffled.
        let mut ready: Vec<NodeId> = (0..total).filter(|&v| remaining_preds[v] == 0).collect();
        ready.shuffle(&mut rng);
        let mut order = Vec::with_capacity(self.num_gate_nodes());
        let mut visited = 0usize;
        while let Some(node) = ready.pop() {
            visited += 1;
            if matches!(self.kinds[node], NodeKind::Gate(_)) {
                order.push(node);
            }
            // Collect newly-ready successors, then push them in random order
            // (DFS flavour: pushed on top of the stack).
            let mut newly_ready: Vec<NodeId> = Vec::new();
            for &(succ, _) in &self.succs[node] {
                remaining_preds[succ] -= 1;
                if remaining_preds[succ] == 0 {
                    newly_ready.push(succ);
                }
            }
            newly_ready.shuffle(&mut rng);
            ready.extend(newly_ready);
        }
        assert_eq!(visited, total, "circuit DAG contains a cycle (impossible)");
        order
    }

    /// Check that a sequence of gate vertices is a valid topological order of
    /// the gate-dependency relation (every gate appears after all gate
    /// predecessors) and covers every gate exactly once.
    pub fn is_valid_gate_order(&self, order: &[NodeId]) -> bool {
        if order.len() != self.num_gate_nodes() {
            return false;
        }
        let mut position = vec![usize::MAX; self.num_nodes()];
        for (pos, &node) in order.iter().enumerate() {
            if self.gate_index(node).is_none() || position[node] != usize::MAX {
                return false;
            }
            position[node] = pos;
        }
        for &node in order {
            for &(pred, _) in &self.preds[node] {
                if let NodeKind::Gate(_) = self.kinds[pred] {
                    if position[pred] == usize::MAX || position[pred] > position[node] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Longest path length (in gate vertices) from any entry to any exit —
    /// the DAG's critical path, equal to the circuit depth.
    pub fn critical_path_length(&self) -> usize {
        let mut longest = vec![0usize; self.num_nodes()];
        // Process in node-id order is not topological in general; do a
        // Kahn-style pass instead.
        let mut remaining: Vec<usize> =
            (0..self.num_nodes()).map(|v| self.preds[v].len()).collect();
        let mut queue: std::collections::VecDeque<NodeId> = (0..self.num_nodes())
            .filter(|&v| remaining[v] == 0)
            .collect();
        let mut best = 0;
        while let Some(node) = queue.pop_front() {
            let weight = usize::from(!self.kinds[node].is_artificial());
            let here = longest[node] + weight;
            best = best.max(here);
            for &(succ, _) in &self.succs[node] {
                longest[succ] = longest[succ].max(here);
                remaining[succ] -= 1;
                if remaining[succ] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::generators;

    fn bell_dag() -> (Circuit, CircuitDag) {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let dag = CircuitDag::from_circuit(&c);
        (c, dag)
    }

    #[test]
    fn node_counts_include_entries_and_exits() {
        let (c, dag) = bell_dag();
        assert_eq!(dag.num_nodes(), c.num_gates() + 2 * c.num_qubits());
        assert_eq!(dag.num_gate_nodes(), 2);
        assert_eq!(dag.num_qubits(), 2);
    }

    #[test]
    fn entry_and_exit_degree_constraints() {
        // Paper: entry gates have no predecessor and one successor; exit
        // gates have no successor and one predecessor.
        let c = generators::by_name("qft", 6);
        let dag = CircuitDag::from_circuit(&c);
        for q in 0..6 {
            assert!(dag.predecessors(dag.entry_node(q)).is_empty());
            assert_eq!(dag.successors(dag.entry_node(q)).len(), 1);
            assert!(dag.successors(dag.exit_node(q)).is_empty());
            assert_eq!(dag.predecessors(dag.exit_node(q)).len(), 1);
        }
    }

    #[test]
    fn gate_in_degree_equals_out_degree_equals_arity() {
        let c = generators::by_name("adder", 10);
        let dag = CircuitDag::from_circuit(&c);
        for (i, gate) in c.gates().iter().enumerate() {
            let node = dag.gate_node(i);
            assert_eq!(dag.predecessors(node).len(), gate.arity(), "gate {i}");
            assert_eq!(dag.successors(node).len(), gate.arity(), "gate {i}");
        }
    }

    #[test]
    fn each_qubit_traces_a_path() {
        let c = generators::by_name("ising", 6);
        let dag = CircuitDag::from_circuit(&c);
        for q in 0..6 {
            // Walk from the entry following edges labelled q; we must reach
            // the exit and visit exactly the gates touching q.
            let mut node = dag.entry_node(q);
            let mut gates_on_path = 0usize;
            loop {
                let next = dag
                    .successors(node)
                    .iter()
                    .find(|&&(_, label)| label == q)
                    .map(|&(n, _)| n);
                match next {
                    Some(n) => {
                        if dag.gate_index(n).is_some() {
                            gates_on_path += 1;
                        }
                        node = n;
                    }
                    None => break,
                }
            }
            assert_eq!(
                node,
                dag.exit_node(q),
                "qubit {q} path does not end at exit"
            );
            let expected = c.gates().iter().filter(|g| g.qubits.contains(&q)).count();
            assert_eq!(gates_on_path, expected, "qubit {q} path misses gates");
        }
    }

    #[test]
    fn edge_count_matches_sum_of_arities_plus_entries() {
        let c = generators::by_name("qaoa", 8);
        let dag = CircuitDag::from_circuit(&c);
        // Each gate has arity in-edges; each exit has 1 in-edge.
        let expected: usize = c.gates().iter().map(|g| g.arity()).sum::<usize>() + c.num_qubits();
        assert_eq!(dag.num_edges(), expected);
    }

    #[test]
    fn natural_order_is_valid() {
        let c = generators::by_name("grover", 9);
        let dag = CircuitDag::from_circuit(&c);
        assert!(dag.is_valid_gate_order(&dag.natural_gate_order()));
    }

    #[test]
    fn random_dfs_orders_are_valid_and_seed_dependent() {
        let c = generators::by_name("qft", 8);
        let dag = CircuitDag::from_circuit(&c);
        let o1 = dag.random_dfs_gate_order(1);
        let o2 = dag.random_dfs_gate_order(2);
        let o1_again = dag.random_dfs_gate_order(1);
        assert!(dag.is_valid_gate_order(&o1));
        assert!(dag.is_valid_gate_order(&o2));
        assert_eq!(o1, o1_again, "same seed must give the same order");
        assert_ne!(o1, o2, "different seeds should explore different orders");
    }

    #[test]
    fn invalid_orders_are_rejected() {
        let (_, dag) = bell_dag();
        let natural = dag.natural_gate_order();
        // Reversed order puts CX before its H predecessor.
        let reversed: Vec<NodeId> = natural.iter().rev().copied().collect();
        assert!(!dag.is_valid_gate_order(&reversed));
        // Truncated order does not cover all gates.
        assert!(!dag.is_valid_gate_order(&natural[..1]));
        // Entry vertices are not gate vertices.
        assert!(!dag.is_valid_gate_order(&[dag.entry_node(0), dag.entry_node(1)]));
    }

    #[test]
    fn working_set_counts_distinct_qubits() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).cx(0, 2).h(3);
        let dag = CircuitDag::from_circuit(&c);
        // Paper example: gate A on {q0,q1}, gate B on {q0,q2} -> L = 3.
        let ws = dag.working_set_of_gates(&[0, 1]);
        assert_eq!(ws.len(), 3);
        let all = dag.working_set_of_gates(&[0, 1, 2]);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn critical_path_equals_circuit_depth() {
        for name in ["qft", "ising", "adder", "bv"] {
            let c = generators::by_name(name, 8);
            let dag = CircuitDag::from_circuit(&c);
            assert_eq!(dag.critical_path_length(), c.depth(), "{name}");
        }
    }

    #[test]
    fn empty_circuit_dag_has_only_entries_and_exits() {
        let c = Circuit::new(3);
        let dag = CircuitDag::from_circuit(&c);
        assert_eq!(dag.num_gate_nodes(), 0);
        assert_eq!(dag.num_nodes(), 6);
        // Each entry connects straight to its exit.
        for q in 0..3 {
            assert_eq!(dag.successors(dag.entry_node(q))[0].0, dag.exit_node(q));
        }
    }
}

//! DAG-driven fusion grouping: cover the gate-dependency DAG with a minimal
//! sequence of executable clusters ("fusion groups").
//!
//! The sliding-window fusion scanner in `hisvsim-statevec` can only merge
//! gates that sit within a bounded reordering distance of each other in
//! *program order*. Deep interleaved circuits — the `random` benchmark
//! family — bury mergeable gates hundreds of positions apart, where no
//! window reaches. The dependency DAG makes those merges visible
//! structurally: two gates with no path between them form an **antichain**
//! and commute by construction (a shared qubit would have created an edge),
//! so no matrix commutation check is ever needed.
//!
//! [`antichain_fusion_groups`] grows groups greedily along the Kahn ready
//! frontier: a group absorbs any *ready* gate (all dependency predecessors
//! already grouped) that fits its qubit-width cap and the caller's
//! per-amplitude cost allowance. Because a gate only ever joins after all
//! its predecessors are in earlier groups or in the same group, the emitted
//! group sequence is a valid topological linearization of the DAG — the
//! property that makes executing the groups in order equivalent to the
//! original circuit.
//!
//! The module is deliberately free of any matrix or cost-model knowledge:
//! the caller describes each gate with a [`GateClass`] (is it diagonal, and
//! how much widening cost its standalone execution would justify), and the
//! algorithm stays a pure graph covering.

use crate::dag::{CircuitDag, NodeId};
use hisvsim_circuit::Qubit;
use std::collections::BTreeSet;

/// What the grouping needs to know about one gate: whether it is diagonal
/// (diagonal runs have no width limit and never mix amplitudes) and the
/// per-amplitude cost its standalone kernel would pay — the allowance a
/// dense group may spend on widening to absorb it.
#[derive(Debug, Clone, Copy)]
pub struct GateClass {
    /// True when the gate's matrix is diagonal in the computational basis.
    pub diagonal: bool,
    /// Per-amplitude cost of executing the gate through its own specialised
    /// kernel. A dense group absorbs the gate only when the extra
    /// arithmetic the widened group pays per amplitude does not exceed
    /// this.
    pub widen_allowance: f64,
}

/// One fusion group: a set of gates with no unresolved dependencies between
/// them and anything outside earlier groups.
#[derive(Debug, Clone)]
pub struct FusionGroup {
    /// Gate indices in a dependency-valid relative order (the order they
    /// joined the group; a gate joins only after every predecessor inside
    /// the group).
    pub gates: Vec<usize>,
    /// The qubit union of the group, in first-touch order.
    pub qubits: Vec<Qubit>,
    /// Whether this is a diagonal run (unlimited width) rather than a dense
    /// group (width-capped).
    pub diagonal: bool,
}

impl FusionGroup {
    /// Number of gates absorbed.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the group holds no gates (never produced by the grouper,
    /// provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }
}

/// Grow fusion groups along the DAG's ready frontier (antichains of the
/// dependency relation).
///
/// `classes[i]` describes gate `i` of the circuit the DAG was built from;
/// `max_width` caps the qubit union of dense groups (diagonal runs are
/// width-free). A non-diagonal gate wider than `max_width` is emitted as a
/// group of its own.
///
/// Guarantees, for any input:
///
/// * every gate appears in exactly one group;
/// * concatenating the groups yields a valid topological order of the
///   gate-dependency DAG ([`CircuitDag::is_valid_gate_order`]);
/// * every non-diagonal group's qubit union is at most
///   `max_width.max(arity of its single oversized gate)`;
/// * the result is deterministic (ties broken by ascending gate index).
pub fn antichain_fusion_groups(
    dag: &CircuitDag,
    classes: &[GateClass],
    max_width: usize,
) -> Vec<FusionGroup> {
    assert!(max_width >= 1, "fusion width must be at least 1");
    assert_eq!(
        classes.len(),
        dag.num_gate_nodes(),
        "one GateClass per gate required"
    );
    let total = dag.num_nodes();
    let mut indegree: Vec<usize> = (0..total).map(|v| dag.predecessors(v).len()).collect();
    // Gates whose dependency predecessors are all grouped already (or are
    // artificial entry vertices), ordered by gate index for determinism.
    let mut ready: BTreeSet<usize> = BTreeSet::new();

    // Completing a vertex releases its successors; artificial vertices
    // (entries, exits) complete transparently.
    fn complete(
        dag: &CircuitDag,
        node: NodeId,
        indegree: &mut [usize],
        ready: &mut BTreeSet<usize>,
    ) {
        for &(succ, _) in dag.successors(node) {
            indegree[succ] -= 1;
            if indegree[succ] == 0 {
                match dag.gate_index(succ) {
                    Some(gate) => {
                        ready.insert(gate);
                    }
                    // An exit vertex has no successors; nothing to release.
                    None => complete(dag, succ, indegree, ready),
                }
            }
        }
    }

    // Seed: every zero-indegree vertex (the entries; for an empty circuit
    // also the exits, which complete transparently).
    for node in 0..total {
        if indegree[node] == 0 {
            match dag.gate_index(node) {
                Some(gate) => {
                    ready.insert(gate);
                }
                None => complete(dag, node, &mut indegree, &mut ready),
            }
        }
    }

    let mut groups: Vec<FusionGroup> = Vec::new();
    while let Some(&seed) = ready.iter().next() {
        ready.remove(&seed);
        let seed_qubits = dag.qubits_of(dag.gate_node(seed)).to_vec();
        let diagonal = classes[seed].diagonal;
        let mut group = FusionGroup {
            gates: vec![seed],
            qubits: seed_qubits,
            diagonal,
        };
        complete(dag, dag.gate_node(seed), &mut indegree, &mut ready);

        // An oversized non-diagonal gate travels alone.
        if !diagonal && group.qubits.len() > max_width {
            groups.push(group);
            continue;
        }

        // Grow to a (greedy) maximal group: scan the ready frontier in
        // ascending gate index for the first absorbable gate; absorbing it
        // may release successors into the frontier, so rescan until a full
        // pass absorbs nothing.
        loop {
            let candidate = ready
                .iter()
                .copied()
                .find(|&gate| can_join(&group, dag, classes, gate, max_width));
            let Some(gate) = candidate else { break };
            ready.remove(&gate);
            for &q in dag.qubits_of(dag.gate_node(gate)) {
                if !group.qubits.contains(&q) {
                    group.qubits.push(q);
                }
            }
            group.gates.push(gate);
            complete(dag, dag.gate_node(gate), &mut indegree, &mut ready);
        }
        groups.push(group);
    }

    debug_assert_eq!(
        groups.iter().map(FusionGroup::len).sum::<usize>(),
        dag.num_gate_nodes(),
        "every gate must be grouped exactly once"
    );
    groups
}

/// Whether a ready `gate` may be absorbed by `group` under the width cap
/// and the caller's cost allowance. Mirrors the window scanner's rules:
/// diagonal runs absorb any diagonal gate; a dense group absorbs a diagonal
/// gate only when it adds no qubits (the matrix product keeps its
/// dimension), and a non-diagonal gate only when the widened kernel's extra
/// per-amplitude arithmetic (`2^union − 2^current`) stays within the gate's
/// standalone cost.
fn can_join(
    group: &FusionGroup,
    dag: &CircuitDag,
    classes: &[GateClass],
    gate: usize,
    max_width: usize,
) -> bool {
    let class = &classes[gate];
    let gate_qubits = dag.qubits_of(dag.gate_node(gate));
    if group.diagonal {
        return class.diagonal;
    }
    if class.diagonal {
        return gate_qubits.iter().all(|q| group.qubits.contains(q));
    }
    let extra = gate_qubits
        .iter()
        .filter(|q| !group.qubits.contains(q))
        .count();
    let union = group.qubits.len() + extra;
    if union > max_width {
        return false;
    }
    let widen_cost = ((1u64 << union) - (1u64 << group.qubits.len())) as f64;
    widen_cost <= class.widen_allowance
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::{generators, Circuit};

    /// A class table mimicking the statevec cost model closely enough for
    /// structural tests: diagonal flags from the gate kind, a flat widening
    /// allowance for everything else.
    fn classes_of(circuit: &Circuit) -> Vec<GateClass> {
        circuit
            .gates()
            .iter()
            .map(|g| GateClass {
                diagonal: g.kind.is_diagonal(),
                widen_allowance: 4.0,
            })
            .collect()
    }

    fn flatten_to_nodes(dag: &CircuitDag, groups: &[FusionGroup]) -> Vec<NodeId> {
        groups
            .iter()
            .flat_map(|g| g.gates.iter().map(|&i| dag.gate_node(i)))
            .collect()
    }

    #[test]
    fn group_order_is_a_valid_linearization_across_families() {
        for name in ["qft", "qaoa", "adder", "ising", "grover"] {
            let circuit = generators::by_name(name, 9);
            let dag = CircuitDag::from_circuit(&circuit);
            for width in [1usize, 2, 3, 5] {
                let groups = antichain_fusion_groups(&dag, &classes_of(&circuit), width);
                assert!(
                    dag.is_valid_gate_order(&flatten_to_nodes(&dag, &groups)),
                    "{name}@width{width}: group order violates dependencies"
                );
            }
        }
    }

    #[test]
    fn random_interleaved_circuits_linearize_and_cover_every_gate() {
        for seed in 0..8 {
            let circuit = generators::random_circuit(8, 90, seed);
            let dag = CircuitDag::from_circuit(&circuit);
            let groups = antichain_fusion_groups(&dag, &classes_of(&circuit), 3);
            assert!(dag.is_valid_gate_order(&flatten_to_nodes(&dag, &groups)));
            let mut seen = vec![false; circuit.num_gates()];
            for group in &groups {
                for &gate in &group.gates {
                    assert!(!seen[gate], "gate {gate} grouped twice (seed {seed})");
                    seen[gate] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "a gate was dropped (seed {seed})");
        }
    }

    #[test]
    fn width_and_cost_caps_are_honored() {
        let circuit = generators::random_circuit(9, 120, 0xCAFE);
        let dag = CircuitDag::from_circuit(&circuit);
        for width in [2usize, 3, 4] {
            for group in antichain_fusion_groups(&dag, &classes_of(&circuit), width) {
                let union = dag
                    .working_set_of_gates(&group.gates)
                    .into_iter()
                    .collect::<Vec<_>>();
                assert_eq!(union.len(), group.qubits.len(), "qubit union mismatch");
                if !group.diagonal {
                    assert!(
                        group.qubits.len() <= width || group.gates.len() == 1,
                        "dense group of {} gates spans {} qubits at width {width}",
                        group.gates.len(),
                        group.qubits.len()
                    );
                }
            }
        }
    }

    #[test]
    fn diagonal_groups_hold_only_diagonal_gates() {
        let circuit = generators::random_circuit(7, 80, 7);
        let dag = CircuitDag::from_circuit(&circuit);
        let classes = classes_of(&circuit);
        for group in antichain_fusion_groups(&dag, &classes, 3) {
            if group.diagonal {
                assert!(group.gates.iter().all(|&g| classes[g].diagonal));
            }
        }
    }

    #[test]
    fn empty_and_single_gate_circuits() {
        let empty = Circuit::new(3);
        let dag = CircuitDag::from_circuit(&empty);
        assert!(antichain_fusion_groups(&dag, &[], 3).is_empty());

        let mut one = Circuit::new(2);
        one.h(0);
        let dag = CircuitDag::from_circuit(&one);
        let groups = antichain_fusion_groups(&dag, &classes_of(&one), 3);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].gates, vec![0]);
        assert_eq!(groups[0].qubits, vec![0]);
    }

    #[test]
    fn oversized_gates_travel_alone() {
        let circuit = generators::adder(8); // contains 3-qubit Toffolis
        let dag = CircuitDag::from_circuit(&circuit);
        let groups = antichain_fusion_groups(&dag, &classes_of(&circuit), 2);
        assert!(dag.is_valid_gate_order(&flatten_to_nodes(&dag, &groups)));
        let oversized: Vec<&FusionGroup> = groups
            .iter()
            .filter(|g| !g.diagonal && g.qubits.len() > 2)
            .collect();
        assert!(!oversized.is_empty(), "adder must contain Toffoli groups");
        assert!(oversized.iter().all(|g| g.gates.len() == 1));
    }

    #[test]
    fn frontier_reaches_past_any_bounded_window() {
        // Two gates on (0, 1) separated by a long stretch of gates on
        // disjoint qubits: a bounded-window scanner flushes the first group
        // long before the partner arrives; the DAG frontier absorbs both
        // into one group because nothing on (0, 1) intervenes.
        let mut circuit = Circuit::new(12);
        circuit.cx(0, 1);
        for round in 0..6 {
            for q in (2..11).step_by(2) {
                circuit.cx(q, q + 1);
                circuit.ry(0.1 + round as f64, q);
            }
        }
        circuit.cx(1, 0);
        let dag = CircuitDag::from_circuit(&circuit);
        let classes = classes_of(&circuit);
        let groups = antichain_fusion_groups(&dag, &classes, 2);
        assert!(dag.is_valid_gate_order(&flatten_to_nodes(&dag, &groups)));
        let pair_group = groups
            .iter()
            .find(|g| g.gates.contains(&0))
            .expect("gate 0 must be grouped");
        assert!(
            pair_group.gates.contains(&(circuit.num_gates() - 1)),
            "the far CX on (0,1) must fuse with the first one"
        );
    }

    #[test]
    fn determinism_same_input_same_groups() {
        let circuit = generators::random_circuit(8, 100, 42);
        let dag = CircuitDag::from_circuit(&circuit);
        let a = antichain_fusion_groups(&dag, &classes_of(&circuit), 3);
        let b = antichain_fusion_groups(&dag, &classes_of(&circuit), 3);
        let gates =
            |groups: &[FusionGroup]| groups.iter().map(|g| g.gates.clone()).collect::<Vec<_>>();
        assert_eq!(gates(&a), gates(&b));
    }
}

//! Partition data structures shared by the partitioning strategies and the
//! simulation engines: the per-gate part assignment, the quotient
//! *part-graph*, and the validation rules of Sec. IV-A (working-set limit,
//! acyclicity, complete coverage).

use crate::dag::{CircuitDag, NodeKind};
use hisvsim_circuit::Qubit;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An assignment of every gate of a circuit to a part.
///
/// Parts are numbered `0..num_parts`; part ids carry no execution-order
/// meaning on their own — the execution order is the topological order of the
/// [`PartGraph`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    part_of_gate: Vec<usize>,
    num_parts: usize,
}

/// Why a partition is not valid for hierarchical execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The assignment length does not match the circuit's gate count.
    WrongLength {
        /// Gates in the circuit.
        expected: usize,
        /// Entries in the assignment.
        got: usize,
    },
    /// A part id has no gates assigned to it.
    EmptyPart(usize),
    /// A part's working set exceeds the limit.
    WorkingSetExceeded {
        /// The offending part.
        part: usize,
        /// Its working-set size.
        size: usize,
        /// The allowed maximum.
        limit: usize,
    },
    /// The quotient graph has a cycle between the two given parts.
    Cyclic(usize, usize),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::WrongLength { expected, got } => {
                write!(f, "assignment covers {got} gates, circuit has {expected}")
            }
            PartitionError::EmptyPart(p) => write!(f, "part {p} is empty"),
            PartitionError::WorkingSetExceeded { part, size, limit } => {
                write!(f, "part {part} touches {size} qubits, limit is {limit}")
            }
            PartitionError::Cyclic(a, b) => {
                write!(f, "parts {a} and {b} depend on each other (cycle)")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

impl Partition {
    /// Build a partition from a per-gate part id vector. Part ids are
    /// renumbered densely (0..k) preserving relative order of first
    /// appearance, so callers may use sparse ids.
    pub fn from_gate_assignment(part_of_gate: Vec<usize>) -> Self {
        let mut remap: std::collections::HashMap<usize, usize> = Default::default();
        let mut dense = Vec::with_capacity(part_of_gate.len());
        for &p in &part_of_gate {
            let next = remap.len();
            let id = *remap.entry(p).or_insert(next);
            dense.push(id);
        }
        let num_parts = remap.len();
        Self {
            part_of_gate: dense,
            num_parts,
        }
    }

    /// The single-part partition (every gate in part 0) — what a
    /// non-hierarchical simulator effectively uses.
    pub fn single_part(num_gates: usize) -> Self {
        Self {
            part_of_gate: vec![0; num_gates],
            num_parts: if num_gates == 0 { 0 } else { 1 },
        }
    }

    /// Number of parts.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Number of gates covered.
    #[inline]
    pub fn num_gates(&self) -> usize {
        self.part_of_gate.len()
    }

    /// Part id of a gate (by its index in the circuit's gate list).
    #[inline]
    pub fn part_of(&self, gate_index: usize) -> usize {
        self.part_of_gate[gate_index]
    }

    /// The raw per-gate assignment.
    #[inline]
    pub fn assignment(&self) -> &[usize] {
        &self.part_of_gate
    }

    /// Gate indices of each part, each list in ascending circuit order (the
    /// order gates of a part are executed in, per Sec. IV-A: "executed with
    /// respect to the original order among those in the same part").
    pub fn gates_by_part(&self) -> Vec<Vec<usize>> {
        let mut parts = vec![Vec::new(); self.num_parts];
        for (gate, &p) in self.part_of_gate.iter().enumerate() {
            parts[p].push(gate);
        }
        parts
    }

    /// Working set (distinct qubits) of each part.
    pub fn working_sets(&self, dag: &CircuitDag) -> Vec<BTreeSet<Qubit>> {
        self.gates_by_part()
            .iter()
            .map(|gates| dag.working_set_of_gates(gates))
            .collect()
    }

    /// Largest working-set size over all parts.
    pub fn max_working_set(&self, dag: &CircuitDag) -> usize {
        self.working_sets(dag)
            .iter()
            .map(|ws| ws.len())
            .max()
            .unwrap_or(0)
    }

    /// Validate the partition against the paper's three conditions: complete
    /// coverage, working-set limit, and acyclicity of the quotient graph.
    /// Returns the parts in a valid execution (topological) order on success.
    pub fn validate(&self, dag: &CircuitDag, limit: usize) -> Result<Vec<usize>, PartitionError> {
        if self.part_of_gate.len() != dag.num_gate_nodes() {
            return Err(PartitionError::WrongLength {
                expected: dag.num_gate_nodes(),
                got: self.part_of_gate.len(),
            });
        }
        let parts = self.gates_by_part();
        for (p, gates) in parts.iter().enumerate() {
            if gates.is_empty() {
                return Err(PartitionError::EmptyPart(p));
            }
            let ws = dag.working_set_of_gates(gates);
            if ws.len() > limit {
                return Err(PartitionError::WorkingSetExceeded {
                    part: p,
                    size: ws.len(),
                    limit,
                });
            }
        }
        let graph = PartGraph::build(dag, self);
        graph.topological_order().ok_or_else(|| {
            graph
                .find_cycle_pair()
                .map_or(PartitionError::Cyclic(0, 0), |(a, b)| {
                    PartitionError::Cyclic(a, b)
                })
        })
    }

    /// The parts in execution order, panicking if the partition is cyclic.
    /// Prefer [`Partition::validate`] when the partition is untrusted.
    pub fn execution_order(&self, dag: &CircuitDag) -> Vec<usize> {
        PartGraph::build(dag, self)
            .topological_order()
            .expect("partition quotient graph has a cycle")
    }
}

/// The quotient graph of a partition: one vertex per part, one weighted edge
/// per ordered pair of parts connected by at least one DAG edge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartGraph {
    num_parts: usize,
    /// Adjacency: `succ[p]` lists `(q, weight)` with `weight` = number of DAG
    /// edges from part `p` to part `q` (the contribution to the edge cut).
    succ: Vec<Vec<(usize, usize)>>,
    pred_count: Vec<usize>,
    /// Total number of DAG edges crossing between two distinct parts.
    edge_cut: usize,
}

impl PartGraph {
    /// Build the quotient graph of `partition` over `dag`. Entry/exit
    /// vertices are ignored (they belong to no part).
    pub fn build(dag: &CircuitDag, partition: &Partition) -> Self {
        let k = partition.num_parts();
        let mut weights: std::collections::BTreeMap<(usize, usize), usize> = Default::default();
        let mut edge_cut = 0usize;
        for node in 0..dag.num_nodes() {
            let Some(gi) = dag.gate_index(node) else {
                continue;
            };
            let from_part = partition.part_of(gi);
            for &(succ, _) in dag.successors(node) {
                if let NodeKind::Gate(gj) = dag.kind(succ) {
                    let to_part = partition.part_of(gj);
                    if from_part != to_part {
                        *weights.entry((from_part, to_part)).or_insert(0) += 1;
                        edge_cut += 1;
                    }
                }
            }
        }
        let mut succ = vec![Vec::new(); k];
        let mut pred_count = vec![0usize; k];
        for (&(a, b), &w) in &weights {
            succ[a].push((b, w));
            pred_count[b] += 1;
        }
        Self {
            num_parts: k,
            succ,
            pred_count,
            edge_cut,
        }
    }

    /// Number of parts (vertices of the quotient graph).
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Total weight of edges between distinct parts — the classic acyclic
    /// partitioning objective the paper's dagP variant replaces with
    /// part-count minimisation.
    #[inline]
    pub fn edge_cut(&self) -> usize {
        self.edge_cut
    }

    /// Successor parts of `p` with edge weights.
    #[inline]
    pub fn successors(&self, p: usize) -> &[(usize, usize)] {
        &self.succ[p]
    }

    /// A topological order of the parts, or `None` if the quotient graph has
    /// a cycle (i.e. the partition is not acyclic).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut remaining = self.pred_count.clone();
        let mut queue: std::collections::VecDeque<usize> =
            (0..self.num_parts).filter(|&p| remaining[p] == 0).collect();
        let mut order = Vec::with_capacity(self.num_parts);
        while let Some(p) = queue.pop_front() {
            order.push(p);
            for &(q, _) in &self.succ[p] {
                remaining[q] -= 1;
                if remaining[q] == 0 {
                    queue.push_back(q);
                }
            }
        }
        (order.len() == self.num_parts).then_some(order)
    }

    /// True when the quotient graph is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }

    /// Find one pair of parts participating in a cycle, for error reporting.
    pub fn find_cycle_pair(&self) -> Option<(usize, usize)> {
        // Any edge (a, b) where b can also reach a demonstrates a cycle.
        for a in 0..self.num_parts {
            for &(b, _) in &self.succ[a] {
                if self.reaches(b, a) {
                    return Some((a, b));
                }
            }
        }
        None
    }

    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut seen = vec![false; self.num_parts];
        let mut stack = vec![from];
        while let Some(p) = stack.pop() {
            if p == to {
                return true;
            }
            if seen[p] {
                continue;
            }
            seen[p] = true;
            for &(q, _) in &self.succ[p] {
                stack.push(q);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hisvsim_circuit::{generators, Circuit};

    /// The paper's running example (Fig. 2a): H on q0..q3, CX(0,1), CX(2,3),
    /// H + RX on q0,q1 and q2,q3, then CX(1,2) and final H's.
    fn paper_example_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.h(0).h(1).cx(0, 1).h(0).rx(std::f64::consts::FRAC_PI_2, 1);
        c.h(2).h(3).cx(2, 3).h(2).rx(std::f64::consts::FRAC_PI_2, 3);
        c.cx(1, 2);
        c.h(1).h(2);
        c
    }

    #[test]
    fn single_part_partition_is_valid_with_full_width_limit() {
        let c = paper_example_circuit();
        let dag = CircuitDag::from_circuit(&c);
        let p = Partition::single_part(c.num_gates());
        assert_eq!(p.num_parts(), 1);
        assert_eq!(p.validate(&dag, 4).unwrap(), vec![0]);
        assert!(p.validate(&dag, 3).is_err());
    }

    #[test]
    fn three_part_split_of_paper_example_is_acyclic() {
        // Fig. 2b: part 0 = the q0/q1 block, part 1 = the q2/q3 block,
        // part 2 = the final CX(1,2) + H's.
        let c = paper_example_circuit();
        let dag = CircuitDag::from_circuit(&c);
        // gates: 0..5 on q0/q1, 5..10 on q2/q3, 10..13 bridging.
        let mut assign = vec![0usize; c.num_gates()];
        for a in assign.iter_mut().take(10).skip(5) {
            *a = 1;
        }
        for a in assign.iter_mut().skip(10) {
            *a = 2;
        }
        let p = Partition::from_gate_assignment(assign);
        assert_eq!(p.num_parts(), 3);
        let order = p.validate(&dag, 2).unwrap();
        // Part 2 must come after both 0 and 1.
        let pos = |x: usize| order.iter().position(|&p| p == x).unwrap();
        assert!(pos(2) > pos(0));
        assert!(pos(2) > pos(1));
        // Working sets are all exactly 2 qubits.
        let ws = p.working_sets(&dag);
        assert!(ws.iter().all(|s| s.len() == 2));
    }

    #[test]
    fn cyclic_partition_is_rejected() {
        // Two gates on the same qubit in opposite parts, interleaved with a
        // gate of the other part, create a 2-cycle in the quotient graph.
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).h(0).h(1);
        let dag = CircuitDag::from_circuit(&c);
        // part 0: gates 0 and 3 (q0 ops), part 1: gates 1, 2, 4.
        let p = Partition::from_gate_assignment(vec![0, 1, 1, 0, 1]);
        match p.validate(&dag, 2) {
            Err(PartitionError::Cyclic(_, _)) => {}
            other => panic!("expected a cycle error, got {other:?}"),
        }
        assert!(!PartGraph::build(&dag, &p).is_acyclic());
    }

    #[test]
    fn working_set_violation_is_reported_with_details() {
        let c = generators::cat_state(6);
        let dag = CircuitDag::from_circuit(&c);
        let p = Partition::single_part(c.num_gates());
        match p.validate(&dag, 3) {
            Err(PartitionError::WorkingSetExceeded {
                part: 0,
                size: 6,
                limit: 3,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn wrong_length_assignment_is_rejected() {
        let c = generators::cat_state(4);
        let dag = CircuitDag::from_circuit(&c);
        let p = Partition::from_gate_assignment(vec![0, 0]);
        assert!(matches!(
            p.validate(&dag, 4),
            Err(PartitionError::WrongLength { .. })
        ));
    }

    #[test]
    fn sparse_part_ids_are_renumbered_densely() {
        let p = Partition::from_gate_assignment(vec![7, 7, 3, 9, 3]);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.part_of(0), 0);
        assert_eq!(p.part_of(2), 1);
        assert_eq!(p.part_of(3), 2);
    }

    #[test]
    fn part_graph_edge_cut_counts_crossing_edges() {
        let c = paper_example_circuit();
        let dag = CircuitDag::from_circuit(&c);
        let mut assign = vec![0usize; c.num_gates()];
        for a in assign.iter_mut().take(10).skip(5) {
            *a = 1;
        }
        for a in assign.iter_mut().skip(10) {
            *a = 2;
        }
        let p = Partition::from_gate_assignment(assign);
        let graph = PartGraph::build(&dag, &p);
        assert!(graph.is_acyclic());
        // Gate 10 (CX 1,2) pulls one edge from part 0 (q1) and one from part
        // 1 (q2); gates 11/12 stay inside part 2.
        assert_eq!(graph.edge_cut(), 2);
    }

    #[test]
    fn execution_order_covers_every_part_once() {
        let c = generators::by_name("qft", 8);
        let dag = CircuitDag::from_circuit(&c);
        // Chop the natural order into chunks of 10 gates.
        let assign: Vec<usize> = (0..c.num_gates()).map(|i| i / 10).collect();
        let p = Partition::from_gate_assignment(assign);
        let order = p.execution_order(&dag);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..p.num_parts()).collect::<Vec<_>>());
    }
}
